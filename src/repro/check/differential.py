"""Seeded differential fuzzing across the two model levels.

The repository has two ways to compute everything: the O(1)-per-quantum
mechanistic model used at paper scale, and the O(n) trace-driven
pipeline models used as the detailed reference.  The fuzzer generates
randomized inputs from an explicit seed (no wall-clock anywhere, so a
rerun with the same seed reproduces byte-identical findings) and
cross-checks the levels against each other and against the paper's
invariants:

* **model cases** -- a random benchmark sample is run through
  :func:`repro.validation.crossmodel.compare_models`; the two levels
  must agree in rank (Spearman correlation, the existing
  cross-validation criterion) and every per-benchmark ratio must stay
  inside absolute tolerance gates.
* **run cases** -- a random workload mix runs on a random machine
  under a random scheduler; the result must satisfy every run-level
  invariant, the recorded schedule must be legal, and the isolated
  inputs must satisfy oracle dominance.
* **stack cases** -- a random isolated run's ABC stack must conserve
  ABC across structures.
* **resume cases** -- a campaign is interrupted at a random event
  (optionally with a corrupt store entry, the SIGKILL signature) and
  resumed; the resumed report must be bit-identical to an
  uninterrupted run's.
* **service cases** -- one seeded arrival stream runs through a fresh
  :class:`~repro.service.server.OpenSystem` twice, serially and via an
  :class:`~repro.runtime.engine.ExecutionEngine` worker pool; the two
  event feeds must match byte-for-byte, both results must conserve
  jobs (``open_system_conservation``), and both decision traces must
  chain-validate.
* **batch cases** -- a random batch of (workload mix x machine x
  scheduler) requests runs through the scalar engine and through one
  cross-run :class:`~repro.batch.sweep.BatchedSweep`, twice (in
  request order and in a permuted order); both batched passes must
  reproduce the scalar results field-for-field
  (``batched_sweep_equivalence``).
* **shard cases** -- a random campaign runs across a random shard
  fleet; the keyspace partition must be a disjoint cover
  (``shard_partition_cover``), randomly-cut per-shard logs must
  replay to one canonical resume state however the merge is ordered
  (``shard_resume_state_canonical``), and a sharded resume over the
  cut logs (optionally with a corrupt store entry) must match the
  uninterrupted fleet bit-for-bit (``resume_equivalence``).
* **mode cases** -- a (placement x protection-mode) run must satisfy
  run accounting, schedule legality, checker-slot legality
  (``mode_slot_legality``), mode-model conservation of the accounting
  overlay (``mode_model_conservation``), decision-trace consistency
  including mode-change replay, and -- on fully-occupied machines --
  byte-identity of ``allowed_modes=("none",)`` with the plain
  reliability scheduler (``mode_none_equivalence``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.check.invariants import (
    CheckReport,
    Finding,
    Severity,
    Violation,
    _apply,
    check_oracle,
    check_run,
    check_schedule,
    check_stack,
    invariant,
)
from repro.config.machines import STANDARD_MACHINES
from repro.validation.crossmodel import ModelAgreement, compare_models
from repro.workloads.spec2006 import BENCHMARK_NAMES

#: Machines the run fuzzer draws from (kept small so cases stay fast).
FUZZ_MACHINES = ("1B1S", "2B2S")

#: Schedulers the run fuzzer draws from.
FUZZ_SCHEDULERS = ("random", "performance", "reliability")

#: Machines the protection-mode fuzzer draws from: 1B3S leaves spare
#: small-core slots so DMR checker allocation is reachable.
MODE_FUZZ_MACHINES = ("1B3S", "2B2S")


@dataclass(frozen=True)
class FuzzGates:
    """Cross-model agreement gates for the differential cases.

    Rank agreement uses the existing
    :mod:`repro.validation.crossmodel` Spearman criterion; the ratio
    bounds are absolute tolerance gates on each benchmark's
    trace-vs-mechanistic IPC and ABC-rate ratios.  The defaults are
    deliberately loose: they are tripwires for gross divergence (a sign
    flip, a unit mix-up, a broken model path), not precision targets.
    """

    min_spearman_ipc: float = 0.30
    min_spearman_abc: float = 0.15
    ipc_ratio_bounds: tuple[float, float] = (0.2, 5.0)
    abc_ratio_bounds: tuple[float, float] = (0.05, 20.0)


@invariant("rank_agreement", subject="differential")
def _rank_agreement(
    agreement: ModelAgreement, gates: FuzzGates
) -> Iterator[Finding]:
    """Trace-driven and mechanistic models agree in rank per core type.

    Scheduling only depends on *relative* per-application performance
    and ACE rates, so rank agreement (Spearman correlation) is the
    cross-model validation criterion.  Gated quantities match the
    repository's validation suite: big-core IPC and ABC, small-core
    IPC.  Small-core ABC is advisory (see
    ``small_abc_rank_agreement``).
    """
    for core_type in ("big", "small"):
        ipc = agreement.spearman_ipc(core_type)
        if not ipc >= gates.min_spearman_ipc:
            yield (
                f"{core_type}-core IPC rank agreement below the gate",
                {"gate": gates.min_spearman_ipc, "spearman_ipc": ipc},
            )
    abc = agreement.spearman_abc("big")
    if not abc >= gates.min_spearman_abc:
        yield (
            "big-core ABC rank agreement below the gate",
            {"gate": gates.min_spearman_abc, "spearman_abc": abc},
        )


@invariant(
    "small_abc_rank_agreement",
    severity=Severity.WARNING,
    subject="differential",
)
def _small_abc_rank_agreement(
    agreement: ModelAgreement, gates: FuzzGates
) -> Iterator[Finding]:
    """Small-core ABC rank agreement is advisory, not gating.

    The in-order pipeline's ACE occupancy is dominated by short,
    similar structure residencies, so its trace-vs-mechanistic ABC
    ranks are noisy on small benchmark samples.  The repository's
    validation suite does not gate this quantity either; a low value
    here is reported as a warning for visibility.
    """
    abc = agreement.spearman_abc("small")
    if not abc >= gates.min_spearman_abc:
        yield (
            "small-core ABC rank agreement below the advisory gate",
            {"gate": gates.min_spearman_abc, "spearman_abc": abc},
        )


@invariant("cross_model_ratio_bounds", subject="differential")
def _cross_model_ratio_bounds(
    agreement: ModelAgreement, gates: FuzzGates
) -> Iterator[Finding]:
    """Per-benchmark trace/mechanistic ratios stay inside the gates."""
    ipc_lo, ipc_hi = gates.ipc_ratio_bounds
    abc_lo, abc_hi = gates.abc_ratio_bounds
    for row in agreement.rows:
        if not ipc_lo <= row.ipc_ratio <= ipc_hi:
            yield (
                f"{row.name} ({row.core_type}) IPC ratio outside "
                f"[{ipc_lo}, {ipc_hi}]",
                {
                    "ipc_ratio": row.ipc_ratio,
                    "mechanistic_ipc": row.mechanistic_ipc,
                    "trace_ipc": row.trace_ipc,
                },
            )
        if not abc_lo <= row.abc_ratio <= abc_hi:
            yield (
                f"{row.name} ({row.core_type}) ABC ratio outside "
                f"[{abc_lo}, {abc_hi}]",
                {
                    "abc_ratio": row.abc_ratio,
                    "mechanistic_abc": row.mechanistic_abc_per_cycle,
                    "trace_abc": row.trace_abc_per_cycle,
                },
            )


def check_agreement(
    agreement: ModelAgreement,
    gates: FuzzGates | None = None,
    *,
    label: str = "differential",
) -> CheckReport:
    """Run the cross-model gates on one agreement sample."""
    gates = gates if gates is not None else FuzzGates()
    return _apply("differential", label, agreement, gates)


class _RecordingScheduler:
    """Delegating scheduler wrapper that records every quantum plan."""

    def __init__(self, inner):
        self.inner = inner
        self.machine = inner.machine
        self.num_apps = inner.num_apps
        self.requires_full_occupancy = getattr(
            inner, "requires_full_occupancy", True
        )
        self.plans_by_quantum: list[list] = []

    def plan_quantum(self, quantum_index: int):
        plans = self.inner.plan_quantum(quantum_index)
        self.plans_by_quantum.append(list(plans))
        return plans

    def observe(self, plan, observations):
        self.inner.observe(plan, observations)


@dataclass(frozen=True)
class FuzzReport:
    """Everything one fuzzing session found.

    The report is a pure function of the seed and case counts: the
    same seed reproduces byte-identical findings.
    """

    seed: int
    reports: tuple[CheckReport, ...]

    @property
    def violations(self):
        return tuple(v for report in self.reports for v in report.violations)

    @property
    def errors(self):
        return tuple(
            v for v in self.violations if v.severity is Severity.ERROR
        )

    @property
    def ok(self) -> bool:
        return not self.errors

    def format(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"fuzz seed={self.seed}: {len(self.reports)} case(s), "
            f"{len(self.errors)} error(s), "
            f"{len(self.violations) - len(self.errors)} warning(s) "
            f"-- {status}"
        ]
        lines.extend(report.format() for report in self.reports)
        return "\n".join(lines)


def _model_case(
    index: int, rng: np.random.Generator, gates: FuzzGates
) -> CheckReport:
    from repro.workloads.spec2006 import classify_benchmarks

    # Stratify the sample across the AVF classes (two draws per
    # class), like the validation suite's hand-picked sample: a
    # uniform draw can land on a cluster of near-identical
    # benchmarks, where rank agreement is dominated by noise rather
    # than by model fidelity.
    classes = classify_benchmarks()
    sample: list[str] = []
    for cls in ("H", "M", "L"):
        pool = sorted(n for n in BENCHMARK_NAMES if classes[n] == cls)
        picks = rng.choice(len(pool), size=2, replace=False)
        sample.extend(pool[i] for i in sorted(picks.tolist()))
    benchmarks = tuple(sample)
    trace_seed = int(rng.integers(0, 2**16))
    agreement = compare_models(
        benchmarks, trace_instructions=8_000, seed=trace_seed
    )
    label = (
        f"model/{index} seed={trace_seed} "
        f"benchmarks={'+'.join(benchmarks)}"
    )
    return check_agreement(agreement, gates, label=label)


def _run_case(index: int, rng: np.random.Generator) -> CheckReport:
    from repro.ace.counters import AceCounterMode
    from repro.sim.experiment import make_scheduler
    from repro.sim.isolated import isolated_stats
    from repro.sim.multicore import MulticoreSimulation, default_models
    from repro.workloads.spec2006 import benchmark

    machine_name = FUZZ_MACHINES[int(rng.integers(len(FUZZ_MACHINES)))]
    machine = STANDARD_MACHINES[machine_name]()
    scheduler_name = FUZZ_SCHEDULERS[int(rng.integers(len(FUZZ_SCHEDULERS)))]
    picks = rng.choice(
        len(BENCHMARK_NAMES), size=machine.num_cores, replace=False
    )
    names = tuple(BENCHMARK_NAMES[i] for i in sorted(picks.tolist()))
    instructions = int(rng.integers(150_000, 350_000))
    seed = int(rng.integers(0, 2**16))
    label = (
        f"run/{index} {machine_name}/{scheduler_name}/"
        f"{'+'.join(names)}#{seed}x{instructions}"
    )

    profiles = [benchmark(name).scaled(instructions) for name in names]
    scheduler = _RecordingScheduler(
        make_scheduler(scheduler_name, machine, len(profiles), seed)
    )
    result = MulticoreSimulation(
        machine,
        profiles,
        scheduler,
        counter_mode=AceCounterMode.FULL,
    ).run()

    models = default_models(machine)
    stats = [
        isolated_stats(profile, models["big"], models["small"])
        for profile in profiles
    ]
    from repro.check.invariants import merge_reports

    return merge_reports(
        [
            check_run(result, label=label),
            check_schedule(
                scheduler.plans_by_quantum,
                machine,
                len(profiles),
                label=label,
            ),
            check_oracle(stats, machine, label=label),
        ],
        subject=label,
    )


@dataclass(frozen=True)
class KernelComparison:
    """Kernel-vs-reference outputs for one fuzzed window (one model)."""

    model: str  # "ooo" or "inorder"
    kernel: object  # WindowTiming (ooo) or QuantumResult (inorder)
    reference: object
    kernel_cache_state: tuple
    reference_cache_state: tuple


def _cache_state(hierarchy) -> tuple:
    """Hashable snapshot of a hierarchy's state and statistics."""
    return (
        tuple(
            (
                cache.stats.accesses,
                cache.stats.misses,
                cache._clock,
                tuple(tuple(sorted(s.items())) for s in cache._sets),
            )
            for cache in (hierarchy.l1d, hierarchy.l2, hierarchy.l3)
        ),
        hierarchy.l3_accesses,
        hierarchy.dram_accesses,
    )


@invariant("kernel_timing_equivalence", subject="kernel")
def _kernel_timing_equivalence(
    comparison: KernelComparison,
) -> Iterator[Finding]:
    """Vectorized window kernels reproduce the reference exactly.

    The OoO kernel must match the straight-line reference
    element-wise (bit-identical timings); the in-order kernel must
    match timing-derived integers exactly and ACE accounting to
    floating-point rounding (its sums are reassociated).
    """
    k, r = comparison.kernel, comparison.reference
    if comparison.model == "ooo":
        if k.committed != r.committed or k.elapsed_cycles != r.elapsed_cycles:
            yield (
                "OoO kernel commit/elapsed diverges from the reference",
                {
                    "kernel_committed": k.committed,
                    "reference_committed": r.committed,
                    "kernel_elapsed": k.elapsed_cycles,
                    "reference_elapsed": r.elapsed_cycles,
                },
            )
            return
        for field in (
            "classes", "dispatch", "issue", "finish", "commit",
            "latency", "mispredicted",
        ):
            a, b = getattr(k, field), getattr(r, field)
            if not np.array_equal(a, b):
                bad = int(np.nonzero(a != b)[0][0])
                yield (
                    f"OoO kernel {field} diverges from the reference",
                    {
                        "field": field,
                        "first_mismatch": bad,
                        "kernel": float(a[bad]),
                        "reference": float(b[bad]),
                    },
                )
    else:
        if (
            k.instructions != r.instructions
            or k.cycles != r.cycles
            or k.memory_accesses != r.memory_accesses
            or k.l3_accesses != r.l3_accesses
            or k.branch_mispredictions != r.branch_mispredictions
        ):
            yield (
                "in-order kernel counts diverge from the reference",
                {
                    "kernel_instructions": k.instructions,
                    "reference_instructions": r.instructions,
                    "kernel_cycles": k.cycles,
                    "reference_cycles": r.cycles,
                },
            )
            return
        for kind in k.ace_bit_cycles:
            a = k.ace_bit_cycles[kind]
            b = r.ace_bit_cycles[kind]
            if abs(a - b) > 1e-9 * max(abs(a), abs(b), 1.0):
                yield (
                    f"in-order kernel {kind.name} ACE accounting diverges",
                    {"structure": kind.name, "kernel": a, "reference": b},
                )


@invariant("kernel_cache_state_equivalence", subject="kernel")
def _kernel_cache_state_equivalence(
    comparison: KernelComparison,
) -> Iterator[Finding]:
    """Kernel and reference leave identical cache state behind.

    Covers the batched access path *and* the budget-break rollback:
    LRU contents, per-level statistics and hierarchy counters must all
    match after the window, including the documented extra access for
    the first uncommitted instruction.
    """
    if comparison.kernel_cache_state != comparison.reference_cache_state:
        yield (
            f"{comparison.model} kernel cache state diverges from the "
            "reference after the window",
            {"model": comparison.model},
        )


def _kernel_case(index: int, rng: np.random.Generator) -> CheckReport:
    from repro.config import MemoryConfig, big_core_config, small_core_config
    from repro.cores.base import ISOLATED
    from repro.cores.inorder import InOrderCoreModel
    from repro.cores.ooo import OutOfOrderCoreModel
    from repro.cores.tracebase import TraceApplication
    from repro.kernels.reference import (
        reference_inorder_run,
        reference_ooo_window,
    )
    from repro.workloads.generator import generate_trace
    from repro.workloads.spec2006 import benchmark

    name = BENCHMARK_NAMES[int(rng.integers(len(BENCHMARK_NAMES)))]
    instructions = int(rng.integers(4_000, 20_000))
    trace_seed = int(rng.integers(0, 2**16))
    # Tiny budgets exercise the budget-break rollback; larger ones the
    # full-window path.  Starts beyond the trace length exercise the
    # wrap-around windowing.
    budget = float(rng.choice([3, 40, 700, 6_000, 60_000]))
    start = int(rng.integers(0, 2 * instructions))
    label = f"kernel/{index} {name}#{trace_seed}x{instructions}@{start}"

    trace = generate_trace(benchmark(name), instructions, seed=trace_seed)
    reports = []
    for model_name in ("ooo", "inorder"):
        if model_name == "ooo":
            mk = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
            mr = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        else:
            mk = InOrderCoreModel(small_core_config(), MemoryConfig())
            mr = InOrderCoreModel(small_core_config(), MemoryConfig())
        ak, ar = TraceApplication(trace), TraceApplication(trace)
        if model_name == "ooo":
            kernel_out = mk.simulate_window(ak, start, budget, ISOLATED)
            reference_out = reference_ooo_window(
                mr, ar, start, budget, ISOLATED
            )
        else:
            kernel_out = mk.run_cycles(ak, start, budget, ISOLATED)
            reference_out = reference_inorder_run(
                mr, ar, start, budget, ISOLATED
            )
        comparison = KernelComparison(
            model=model_name,
            kernel=kernel_out,
            reference=reference_out,
            kernel_cache_state=_cache_state(mk.hierarchy_for(ak)),
            reference_cache_state=_cache_state(mr.hierarchy_for(ar)),
        )
        reports.append(
            _apply("kernel", f"{label} {model_name}", comparison)
        )
    from repro.check.invariants import merge_reports

    return merge_reports(reports, subject=label)


def _stack_case(index: int, rng: np.random.Generator) -> CheckReport:
    from repro.config import MemoryConfig, big_core_config
    from repro.cores.mechanistic import MechanisticCoreModel
    from repro.sim.isolated import run_isolated
    from repro.workloads.spec2006 import benchmark

    name = BENCHMARK_NAMES[int(rng.integers(len(BENCHMARK_NAMES)))]
    instructions = int(rng.integers(100_000, 300_000))
    profile = benchmark(name).scaled(instructions)
    model = MechanisticCoreModel(big_core_config(), MemoryConfig())
    result = run_isolated(model, profile)
    label = f"stack/{index} big/{name}x{instructions}"
    return check_stack(result, label=label)


#: Scheduler builders the decision-trace fuzzer draws from: every
#: SamplingScheduler optimizer shape (greedy and exhaustive phases).
DECISION_SCHEDULERS = ("performance", "reliability", "constrained")


def _decision_case(index: int, rng: np.random.Generator) -> CheckReport:
    from repro.ace.counters import AceCounterMode
    from repro.obs.decisions import (
        DecisionTraceRecorder,
        ReplayError,
        replay_trace,
    )
    from repro.sched.constrained import ConstrainedReliabilityScheduler
    from repro.sim.experiment import make_scheduler
    from repro.sim.multicore import MulticoreSimulation
    from repro.workloads.spec2006 import benchmark

    machine_name = FUZZ_MACHINES[int(rng.integers(len(FUZZ_MACHINES)))]
    machine = STANDARD_MACHINES[machine_name]()
    scheduler_name = DECISION_SCHEDULERS[
        int(rng.integers(len(DECISION_SCHEDULERS)))
    ]
    picks = rng.choice(
        len(BENCHMARK_NAMES), size=machine.num_cores, replace=False
    )
    names = tuple(BENCHMARK_NAMES[i] for i in sorted(picks.tolist()))
    instructions = int(rng.integers(150_000, 300_000))
    label = (
        f"decision/{index} {machine_name}/{scheduler_name}/"
        f"{'+'.join(names)}x{instructions}"
    )

    profiles = [benchmark(name).scaled(instructions) for name in names]
    if scheduler_name == "constrained":
        scheduler = ConstrainedReliabilityScheduler(
            machine, len(profiles), max_stp_loss=0.1
        )
    else:
        scheduler = make_scheduler(scheduler_name, machine, len(profiles), 0)
    scheduler.recorder = DecisionTraceRecorder()
    MulticoreSimulation(
        machine, profiles, scheduler, counter_mode=AceCounterMode.FULL
    ).run()
    records = scheduler.recorder.records

    from repro.check.invariants import check_decision_trace

    report = check_decision_trace(records, label=label)
    violations = list(report.violations)
    final = tuple(scheduler._assignment.core_of)
    try:
        replayed = replay_trace(records)
    except ReplayError as error:
        replayed = None
        detail = str(error)
    if replayed != final:
        violations.append(
            Violation(
                invariant="decision_trace_consistency",
                severity=Severity.ERROR,
                subject=label,
                message=(
                    "replaying the trace does not reproduce the "
                    "scheduler's final assignment"
                    if replayed is not None
                    else f"trace replay failed: {detail}"
                ),
            )
        )
    return CheckReport(
        subject=label,
        checked=report.checked,
        violations=tuple(violations),
    )


def _resume_case(index: int, rng: np.random.Generator) -> CheckReport:
    """Interrupt a campaign at a random point, resume it, and demand
    the resumed report match an uninterrupted run's bit-for-bit."""
    import tempfile
    from pathlib import Path

    from repro.check.invariants import check_resume
    from repro.runtime.engine import ExecutionEngine, FaultPlan
    from repro.runtime.events import CallbackSink, CampaignPlan
    from repro.runtime.resume import ResumeState
    from repro.runtime.retry import FailurePolicy
    from repro.sim.campaign import RunSpec

    machine_name = FUZZ_MACHINES[int(rng.integers(len(FUZZ_MACHINES)))]
    machine = STANDARD_MACHINES[machine_name]()
    count = int(rng.integers(3, 6))
    specs = []
    for spec_index in range(count):
        picks = rng.choice(
            len(BENCHMARK_NAMES), size=machine.num_cores, replace=False
        )
        names = tuple(BENCHMARK_NAMES[i] for i in sorted(picks.tolist()))
        scheduler = FUZZ_SCHEDULERS[int(rng.integers(len(FUZZ_SCHEDULERS)))]
        specs.append(
            RunSpec(
                machine_name,
                names,
                scheduler,
                int(rng.integers(60_000, 150_000)),
                seed=spec_index,
            )
        )
    # One job may fail permanently; the same fault plan applies to the
    # interrupted, resumed and baseline runs so their statuses agree.
    fail_index = int(rng.integers(count + 1))  # == count: no failure
    plan = (
        FaultPlan(fail_attempts={fail_index: 99})
        if fail_index < count
        else None
    )
    label = (
        f"resume/{index} {machine_name} x{count} "
        f"fail@{fail_index if plan is not None else '-'}"
    )

    def engine(**kwargs) -> ExecutionEngine:
        return ExecutionEngine(
            jobs=1,
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=plan,
            **kwargs,
        )

    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        events: list = []
        engine(
            sinks=[CallbackSink(events.append)], checkpoint_every=2
        ).run_many(specs, store=tmp / "store")
        # Simulate a SIGKILL: drop a random suffix of the event stream
        # (the plan record survives -- it is emitted at the start).
        plan_at = next(
            i for i, e in enumerate(events) if isinstance(e, CampaignPlan)
        )
        cut = int(rng.integers(plan_at + 1, len(events) + 1))
        state = ResumeState.from_events(events[:cut])
        # Sometimes the kill also left a truncated store entry behind;
        # resume must recompute it, not crash or trust it.
        if state.completed and int(rng.integers(2)):
            keys = sorted(state.completed)
            victim = tmp / "store" / (
                keys[int(rng.integers(len(keys)))] + ".json"
            )
            victim.write_text(victim.read_text()[:25])
        resumed = engine().run_many(specs, resume_from=state)
        full = engine().run_many(specs, store=tmp / "full")
        return check_resume(full, resumed, label=label)


#: Arrival processes and admission policies the service fuzzer draws
#: from.
SERVICE_PROCESSES = ("poisson", "bursty", "diurnal")
SERVICE_ADMISSIONS = ("fifo", "sser")


@invariant("service_feed_determinism", subject="service_feed")
def _service_feed_determinism(
    serial_lines: Sequence[str], parallel_lines: Sequence[str]
) -> Iterator[Finding]:
    """Serial and engine-parallel service runs emit identical feeds.

    The open system advances in virtual time only, so executing quantum
    slices through an :class:`~repro.runtime.engine.ExecutionEngine`
    worker pool must reproduce the serial event stream byte-for-byte --
    same arrivals, same placements, same sheds, same departures.
    """
    if len(serial_lines) != len(parallel_lines):
        yield (
            "serial and parallel feeds have different event counts",
            {
                "parallel_events": len(parallel_lines),
                "serial_events": len(serial_lines),
            },
        )
    for i, (a, b) in enumerate(zip(serial_lines, parallel_lines)):
        if a != b:
            yield (
                f"feeds diverge at event {i}: {a} != {b}",
                {"event_index": i},
            )
            break


def _service_case(index: int, rng: np.random.Generator) -> CheckReport:
    """Run one arrival stream serially and through a worker pool and
    demand identical event feeds, conserved job accounting, and a
    chain-valid decision trace on both sides."""
    from repro.check.invariants import (
        check_decision_trace,
        check_service,
        merge_reports,
    )
    from repro.obs.decisions import DecisionTraceRecorder
    from repro.runtime.engine import ExecutionEngine
    from repro.service.arrivals import make_process, service_benchmark_pool
    from repro.service.events import ServiceFeed
    from repro.service.server import OpenSystem, ServiceConfig

    machine_name = FUZZ_MACHINES[int(rng.integers(len(FUZZ_MACHINES)))]
    machine = STANDARD_MACHINES[machine_name]()
    process_name = SERVICE_PROCESSES[
        int(rng.integers(len(SERVICE_PROCESSES)))
    ]
    admission = SERVICE_ADMISSIONS[int(rng.integers(len(SERVICE_ADMISSIONS)))]
    rate = float(rng.integers(200, 1_500))
    count = int(rng.integers(10, 25))
    stream_seed = int(rng.integers(0, 2**16))
    instructions = int(rng.integers(150_000, 400_000))
    label = (
        f"service/{index} {machine_name}/{admission}/{process_name}"
        f"@{rate:g}x{count}#{stream_seed}"
    )

    process = make_process(
        process_name,
        rate,
        service_benchmark_pool(),
        seed=stream_seed,
        instructions=instructions,
    )
    arrivals = process.stream(count)
    config = ServiceConfig(
        machine=machine,
        admission=admission,
        queue_capacity=4,
        deadline_seconds=0.02,
    )

    def run_once(map_tasks):
        feed = ServiceFeed()
        recorder = DecisionTraceRecorder()
        system = OpenSystem(
            config, feed=feed, recorder=recorder, map_tasks=map_tasks
        )
        system.enqueue_arrivals(arrivals)
        return system.run(), feed, recorder

    serial_result, serial_feed, serial_recorder = run_once(None)
    engine = ExecutionEngine(jobs=2)
    try:
        parallel_result, parallel_feed, parallel_recorder = run_once(
            engine.map_tasks
        )
    finally:
        engine.close()

    return merge_reports(
        [
            _apply(
                "service_feed",
                label,
                serial_feed.lines,
                parallel_feed.lines,
            ),
            check_service(serial_result, label=f"{label} serial"),
            check_service(parallel_result, label=f"{label} parallel"),
            check_decision_trace(
                serial_recorder.records, label=f"{label} serial"
            ),
            check_decision_trace(
                parallel_recorder.records, label=f"{label} parallel"
            ),
        ],
        subject=label,
    )


def _batch_case(index: int, rng: np.random.Generator) -> CheckReport:
    """Run one request batch through the scalar engine and through a
    :class:`~repro.batch.sweep.BatchedSweep` (in request order and in
    a permuted order) and demand field-identical results."""
    from repro.ace.counters import AceCounterMode
    from repro.batch.sweep import BatchRunRequest, run_workload_batch
    from repro.check.batcheq import check_batch
    from repro.check.invariants import merge_reports
    from repro.sim.experiment import make_scheduler
    from repro.sim.multicore import MulticoreSimulation
    from repro.workloads.spec2006 import benchmark

    count = int(rng.integers(3, 7))
    requests = []
    for _ in range(count):
        machine_name = FUZZ_MACHINES[int(rng.integers(len(FUZZ_MACHINES)))]
        machine = STANDARD_MACHINES[machine_name]()
        scheduler = FUZZ_SCHEDULERS[int(rng.integers(len(FUZZ_SCHEDULERS)))]
        picks = rng.choice(
            len(BENCHMARK_NAMES), size=machine.num_cores, replace=False
        )
        names = tuple(BENCHMARK_NAMES[i] for i in sorted(picks.tolist()))
        mode = (
            AceCounterMode.FULL
            if int(rng.integers(2))
            else AceCounterMode.ROB_ONLY
        )
        requests.append(
            BatchRunRequest(
                machine=machine,
                benchmarks=names,
                scheduler=scheduler,
                instructions=int(rng.integers(150_000, 350_000)),
                seed=int(rng.integers(0, 2**16)),
                counter_mode=mode,
            )
        )
    label = f"batch/{index} x{count}"

    scalar = []
    for req in requests:
        profiles = [
            benchmark(name).scaled(req.instructions)
            for name in req.benchmarks
        ]
        scheduler = make_scheduler(
            req.scheduler, req.machine, len(profiles), req.seed
        )
        result = MulticoreSimulation(
            req.machine,
            profiles,
            scheduler,
            counter_mode=req.counter_mode,
        ).run()
        result.scheduler_name = req.scheduler
        scalar.append(result)

    batched = run_workload_batch(requests)
    order = rng.permutation(count)
    permuted = run_workload_batch([requests[i] for i in order])
    unpermuted: list = [None] * count
    for slot, original in enumerate(order.tolist()):
        unpermuted[original] = permuted[slot]
    return merge_reports(
        [
            check_batch(scalar, batched, label=label),
            check_batch(scalar, unpermuted, label=f"{label} permuted"),
        ],
        subject=label,
    )


def _shard_case(index: int, rng: np.random.Generator) -> CheckReport:
    """Shard a campaign, kill it at random per-shard log cuts, and
    demand the partition covers the keyspace, the replayed resume
    state is canonical under merge reordering, and a sharded resume
    (possibly over a corrupted store entry) matches the uninterrupted
    fleet bit-for-bit."""
    import tempfile
    from pathlib import Path

    from repro.check.invariants import (
        check_resume,
        check_shard_partition,
        check_shard_resume_states,
        merge_reports,
    )
    from repro.runtime.engine import FaultPlan
    from repro.runtime.events import (
        CampaignPlan,
        JsonlEventSink,
        merge_event_streams,
        read_events,
    )
    from repro.runtime.resume import ResumeState
    from repro.runtime.retry import FailurePolicy
    from repro.runtime.shard import InProcessShardTransport, ShardCoordinator
    from repro.sim.campaign import RunSpec

    machine_name = FUZZ_MACHINES[int(rng.integers(len(FUZZ_MACHINES)))]
    machine = STANDARD_MACHINES[machine_name]()
    count = int(rng.integers(3, 6))
    specs = []
    for spec_index in range(count):
        picks = rng.choice(
            len(BENCHMARK_NAMES), size=machine.num_cores, replace=False
        )
        names = tuple(BENCHMARK_NAMES[i] for i in sorted(picks.tolist()))
        scheduler = FUZZ_SCHEDULERS[int(rng.integers(len(FUZZ_SCHEDULERS)))]
        specs.append(
            RunSpec(
                machine_name,
                names,
                scheduler,
                int(rng.integers(60_000, 150_000)),
                seed=spec_index,
            )
        )
    shards = int(rng.integers(2, 5))
    fail_index = int(rng.integers(count + 1))  # == count: no failure
    plan = (
        FaultPlan(fail_attempts={fail_index: 99})
        if fail_index < count
        else None
    )
    label = (
        f"shard/{index} {machine_name} x{count} shards={shards} "
        f"fail@{fail_index if plan is not None else '-'}"
    )
    keys = [spec.key() for spec in specs]

    def coordinator(**kwargs) -> ShardCoordinator:
        return ShardCoordinator(
            shards,
            transport_factory=InProcessShardTransport,
            failure_policy=FailurePolicy.COLLECT,
            fault_plan=plan,
            **kwargs,
        )

    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        log = tmp / "log.jsonl"
        log_sink = JsonlEventSink(log)
        try:
            full = coordinator(
                log_sink=log_sink, shard_log_base=log
            ).run(specs, store=tmp / "store")
        finally:
            log_sink.close()
        partition_report = check_shard_partition(keys, shards, label=label)

        # Simulate a fleet SIGKILL: each shard's log survives only up
        # to an independent random cut (the coordinator's plan record,
        # written first to the main log, survives by construction).
        plan_event = next(
            e for e in read_events(log) if isinstance(e, CampaignPlan)
        )
        # A shard log is a standalone campaign log, so it carries the
        # worker's own shard-local plan/bracket records; only the job
        # events belong in the global merge (same filter the
        # coordinator applies).
        from repro.runtime.shard import _SHARD_LOCAL_EVENTS

        shard_log_paths = [
            log.with_name(f"{log.name}.shard{s}.jsonl")
            for s in range(shards)
        ]
        streams = [
            [
                e
                for e in read_events(path)
                if not isinstance(e, _SHARD_LOCAL_EVENTS)
            ]
            if path.exists()
            else []  # a shard that owned no jobs writes no log
            for path in shard_log_paths
        ]
        cut_streams = [
            stream[: int(rng.integers(len(stream) + 1))]
            for stream in streams
        ]
        merged = merge_event_streams(cut_streams)
        state = ResumeState.from_events([plan_event] + merged)
        # Permuting the shard completion order must replay to the
        # same canonical state.
        order = rng.permutation(len(cut_streams)).tolist()
        permuted = merge_event_streams([cut_streams[i] for i in order])
        state_permuted = ResumeState.from_events([plan_event] + permuted)
        state_report = check_shard_resume_states(
            state, state_permuted, label=label
        )

        # Sometimes the kill also left a truncated store entry behind;
        # the resumed fleet must recompute it, not crash or trust it.
        if state.completed and int(rng.integers(2)):
            completed = sorted(state.completed)
            victim = tmp / "store" / (
                completed[int(rng.integers(len(completed)))] + ".json"
            )
            victim.write_text(victim.read_text()[:25])
        resumed = coordinator().run(
            specs, resume_from=state, store=tmp / "store"
        )
        resume_report = check_resume(full, resumed, label=label)
    return merge_reports(
        [partition_report, state_report, resume_report], subject=label
    )


def _mode_case(index: int, rng: np.random.Generator) -> CheckReport:
    """Fuzz the (placement x protection-mode) scheduler end to end.

    Runs a mode-aware simulation (sometimes with spare cores so DMR
    checker allocation is reachable) and checks run accounting,
    schedule legality, mode/checker slot legality, mode-model
    conservation of the accounting overlay, and decision-trace
    consistency including mode-change replay.  On fully-occupied
    machines it additionally demands that the scheduler restricted to
    ``allowed_modes=("none",)`` reproduces the plain reliability
    scheduler's serialized result byte-for-byte.
    """
    from repro.ace.counters import AceCounterMode
    from repro.check.invariants import (
        check_decision_trace,
        check_mode_none,
        check_mode_outcome,
        check_mode_schedule,
        merge_reports,
    )
    from repro.obs.decisions import DecisionTraceRecorder
    from repro.sched.modes import ModeAwareReliabilityScheduler, apply_modes
    from repro.sched.reliability import ReliabilityScheduler
    from repro.sim.multicore import MulticoreSimulation
    from repro.sim.serialize import run_result_to_dict
    from repro.workloads.spec2006 import benchmark

    machine_name = MODE_FUZZ_MACHINES[
        int(rng.integers(len(MODE_FUZZ_MACHINES)))
    ]
    machine = STANDARD_MACHINES[machine_name]()
    num_apps = machine.num_cores - int(rng.integers(0, 2))
    picks = rng.choice(len(BENCHMARK_NAMES), size=num_apps, replace=False)
    names = tuple(BENCHMARK_NAMES[i] for i in sorted(picks.tolist()))
    instructions = int(rng.integers(4_000_000, 8_000_000))
    label = (
        f"mode/{index} {machine_name}/modes/"
        f"{'+'.join(names)}x{instructions}"
    )

    inner = ModeAwareReliabilityScheduler(machine, num_apps)
    inner.recorder = DecisionTraceRecorder()
    scheduler = _RecordingScheduler(inner)
    result = MulticoreSimulation(
        machine,
        [benchmark(name).scaled(instructions) for name in names],
        scheduler,
        counter_mode=AceCounterMode.FULL,
    ).run()
    schedule = inner.mode_schedule()
    outcome = apply_modes(result, schedule, machine.memory)

    reports = [
        check_run(result, label=label),
        check_schedule(
            scheduler.plans_by_quantum, machine, num_apps, label=label
        ),
        check_mode_schedule(
            scheduler.plans_by_quantum,
            inner.mode_history,
            machine,
            num_apps,
            label=label,
        ),
        check_mode_outcome(
            outcome, result, schedule, machine.memory, label=label
        ),
        check_decision_trace(inner.recorder.records, label=label),
    ]
    if num_apps == machine.num_cores:
        pair = []
        for make in (
            lambda: ModeAwareReliabilityScheduler(
                machine, num_apps, allowed_modes=("none",)
            ),
            lambda: ReliabilityScheduler(machine, num_apps),
        ):
            run = MulticoreSimulation(
                machine,
                [benchmark(name).scaled(instructions) for name in names],
                make(),
                counter_mode=AceCounterMode.FULL,
            ).run()
            payload = run_result_to_dict(run)
            payload["scheduler_name"] = "reliability"
            pair.append(payload)
        reports.append(check_mode_none(pair[0], pair[1], label=label))
    return merge_reports(reports, subject=label)


def fuzz(
    seed: int = 0,
    *,
    model_cases: int = 2,
    run_cases: int = 3,
    stack_cases: int = 2,
    kernel_cases: int = 2,
    decision_cases: int = 2,
    resume_cases: int = 2,
    service_cases: int = 2,
    batch_cases: int = 2,
    shard_cases: int = 2,
    mode_cases: int = 2,
    gates: FuzzGates | None = None,
) -> FuzzReport:
    """Run one seeded fuzzing session.

    All randomness derives from ``seed`` through one
    :class:`numpy.random.Generator`; nothing reads the clock, so the
    findings are reproducible byte-for-byte.  Newer case kinds (kernel,
    then decision, then resume, then service, then batch, then shard,
    then mode) draw from the rng after the older ones, so adding them
    kept existing seeds' earlier cases identical.
    """
    gates = gates if gates is not None else FuzzGates()
    rng = np.random.default_rng(seed)
    reports: list[CheckReport] = []
    for index in range(model_cases):
        reports.append(_model_case(index, rng, gates))
    for index in range(run_cases):
        reports.append(_run_case(index, rng))
    for index in range(stack_cases):
        reports.append(_stack_case(index, rng))
    for index in range(kernel_cases):
        reports.append(_kernel_case(index, rng))
    for index in range(decision_cases):
        reports.append(_decision_case(index, rng))
    for index in range(resume_cases):
        reports.append(_resume_case(index, rng))
    for index in range(service_cases):
        reports.append(_service_case(index, rng))
    for index in range(batch_cases):
        reports.append(_batch_case(index, rng))
    for index in range(shard_cases):
        reports.append(_shard_case(index, rng))
    for index in range(mode_cases):
        reports.append(_mode_case(index, rng))
    return FuzzReport(seed=seed, reports=tuple(reports))
