"""Cross-validation of the two core-model levels.

The mechanistic model runs paper-scale experiments; the trace-driven
pipeline models are the detailed reference.  Scheduling decisions only
depend on *relative* per-application performance and ACE rates, so the
validation criterion is rank agreement (Spearman correlation) between
the two levels across benchmarks, per core type, for both IPC and
ACE-bits-per-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config.cores import big_core_config, small_core_config
from repro.config.machines import MemoryConfig
from repro.cores.base import ISOLATED
from repro.cores.inorder import InOrderCoreModel
from repro.cores.mechanistic import MechanisticCoreModel
from repro.cores.ooo import OutOfOrderCoreModel
from repro.cores.tracebase import TraceApplication
from repro.kernels.trace_cache import cached_generate_trace
from repro.workloads.spec2006 import SUITE, benchmark

#: Default benchmark sample: spans the AVF spectrum and every
#: qualitative behaviour class.
DEFAULT_BENCHMARKS = (
    "gobmk", "perlbench", "mcf", "libquantum", "bzip2", "povray",
    "hmmer", "soplex", "zeusmp", "milc", "lbm",
)


@dataclass(frozen=True)
class BenchmarkAgreement:
    """Both models' view of one benchmark on one core type."""

    name: str
    core_type: str
    trace_ipc: float
    mechanistic_ipc: float
    trace_abc_per_cycle: float
    mechanistic_abc_per_cycle: float

    @property
    def ipc_ratio(self) -> float:
        return self.trace_ipc / self.mechanistic_ipc

    @property
    def abc_ratio(self) -> float:
        return self.trace_abc_per_cycle / self.mechanistic_abc_per_cycle


def _ranks(values: Sequence[float]) -> np.ndarray:
    """Average ranks (ties share the mean rank), 1-based."""
    array = np.asarray(values, dtype=float)
    order = np.argsort(array, kind="stable")
    ranks = np.empty(len(array), dtype=float)
    ranks[order] = np.arange(1, len(array) + 1, dtype=float)
    for value in np.unique(array):
        mask = array == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation.

    Uses :mod:`scipy` when available and falls back to a pure-numpy
    rank-then-Pearson implementation otherwise, so the rank-agreement
    criterion works in minimal environments (e.g. the CI check job).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    try:
        from scipy.stats import spearmanr
    except ImportError:
        return float(np.corrcoef(_ranks(xs), _ranks(ys))[0, 1])
    return float(spearmanr(xs, ys).statistic)


@dataclass(frozen=True)
class ModelAgreement:
    """Cross-model agreement over a benchmark sample."""

    rows: tuple[BenchmarkAgreement, ...]

    def per_core(self, core_type: str) -> list[BenchmarkAgreement]:
        return [r for r in self.rows if r.core_type == core_type]

    def spearman_ipc(self, core_type: str) -> float:
        rows = self.per_core(core_type)
        return spearman(
            [r.trace_ipc for r in rows],
            [r.mechanistic_ipc for r in rows],
        )

    def spearman_abc(self, core_type: str) -> float:
        rows = self.per_core(core_type)
        return spearman(
            [r.trace_abc_per_cycle for r in rows],
            [r.mechanistic_abc_per_cycle for r in rows],
        )


def compare_models(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    *,
    trace_instructions: int = 20_000,
    seed: int = 5,
    memory: MemoryConfig | None = None,
) -> ModelAgreement:
    """Run both model levels on a benchmark sample.

    Each benchmark's first phase runs isolated on each core type:
    through the trace-driven pipeline model on a generated trace, and
    through the mechanistic analysis.
    """
    unknown = [b for b in benchmarks if b not in SUITE]
    if unknown:
        raise ValueError(f"unknown benchmarks: {unknown}")
    if len(benchmarks) < 3:
        raise ValueError("need at least three benchmarks to rank")
    memory = memory if memory is not None else MemoryConfig()
    mech_big = MechanisticCoreModel(big_core_config(), memory)
    mech_small = MechanisticCoreModel(small_core_config(), memory)
    rows: list[BenchmarkAgreement] = []
    for name in benchmarks:
        profile = benchmark(name)
        trace = cached_generate_trace(profile, trace_instructions, seed=seed)
        chars = profile.phases[0][1]
        for core_type, trace_model, mech in (
            ("big", OutOfOrderCoreModel(big_core_config(), memory), mech_big),
            (
                "small",
                InOrderCoreModel(small_core_config(), memory),
                mech_small,
            ),
        ):
            app = TraceApplication(trace)
            run = trace_model.run_cycles(
                app, 0, 100 * trace_instructions, ISOLATED
            )
            analysis = mech.analyze(chars, ISOLATED)
            rows.append(
                BenchmarkAgreement(
                    name=name,
                    core_type=core_type,
                    trace_ipc=run.ipc,
                    mechanistic_ipc=analysis.ipc,
                    trace_abc_per_cycle=run.ace_bits_per_cycle(),
                    mechanistic_abc_per_cycle=analysis.total_ace_bits_per_cycle,
                )
            )
    return ModelAgreement(rows=tuple(rows))
