"""Validation: cross-model agreement checks."""

from repro.validation.crossmodel import (
    DEFAULT_BENCHMARKS,
    BenchmarkAgreement,
    ModelAgreement,
    compare_models,
)

__all__ = [
    "BenchmarkAgreement",
    "DEFAULT_BENCHMARKS",
    "ModelAgreement",
    "compare_models",
]
