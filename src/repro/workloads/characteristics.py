"""Workload characteristics: the statistical description of a benchmark.

The reproduction replaces SPEC CPU2006 SimPoints with synthetic
benchmark profiles.  A :class:`BenchmarkProfile` is a sequence of
phases; each :class:`PhaseCharacteristics` captures the statistics that
determine performance and vulnerability on either core type:
instruction mix, dependency behaviour (ILP), front-end miss rates
(branch mispredictions, I-cache misses), data-cache miss rates at each
level, memory-level parallelism, and how strongly branch resolution
depends on in-flight load misses (which governs how much *wrong-path,
un-ACE* state sits in the ROB underneath memory stalls -- the
mcf/libquantum effect in Section 2.3).

Both the mechanistic core model (`repro.cores.mechanistic`) and the
synthetic trace generator (`repro.workloads.generator`) consume the
same characteristics, which keeps the two modelling levels consistent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.isa.instruction import EXECUTION_LATENCY, InstructionClass


@dataclass(frozen=True)
class InstructionMix:
    """Per-class dynamic instruction fractions (must sum to 1)."""

    nop: float = 0.02
    int_alu: float = 0.40
    int_mul: float = 0.01
    int_div: float = 0.0
    fp_add: float = 0.0
    fp_mul: float = 0.0
    fp_div: float = 0.0
    load: float = 0.25
    store: float = 0.12
    branch: float = 0.20

    def __post_init__(self) -> None:
        total = sum(self.as_dict().values())
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise ValueError(f"instruction mix sums to {total}, expected 1.0")
        if any(f < 0 for f in self.as_dict().values()):
            raise ValueError("instruction mix fractions must be non-negative")

    def as_dict(self) -> dict[InstructionClass, float]:
        return {
            InstructionClass.NOP: self.nop,
            InstructionClass.INT_ALU: self.int_alu,
            InstructionClass.INT_MUL: self.int_mul,
            InstructionClass.INT_DIV: self.int_div,
            InstructionClass.FP_ADD: self.fp_add,
            InstructionClass.FP_MUL: self.fp_mul,
            InstructionClass.FP_DIV: self.fp_div,
            InstructionClass.LOAD: self.load,
            InstructionClass.STORE: self.store,
            InstructionClass.BRANCH: self.branch,
        }

    @property
    def memory_fraction(self) -> float:
        return self.load + self.store

    @property
    def fp_fraction(self) -> float:
        return self.fp_add + self.fp_mul + self.fp_div

    def average_execution_latency(self) -> float:
        """Mean non-memory execution latency over the mix (cycles)."""
        return sum(
            frac * EXECUTION_LATENCY[cls] for cls, frac in self.as_dict().items()
        )


@dataclass(frozen=True)
class PhaseCharacteristics:
    """Statistics of one execution phase of a benchmark.

    Attributes:
        mix: dynamic instruction mix.
        dep_distance_mean: mean backward register-dependency distance
            (geometrically distributed in the trace generator).  Larger
            means more independent instructions, hence more ILP.
        branch_mpki: branch *mispredictions* per kilo-instruction.
        icache_mpki: L1-I misses per kilo-instruction.
        l1d_mpki: L1-D misses per kilo-instruction (serviced by L2).
        l2_mpki: L2 misses per kilo-instruction (serviced by L3).
        l3_mpki: L3 misses per kilo-instruction at the full 8 MB LLC
            (serviced by DRAM).
        cache_sensitivity: how strongly the L3 miss rate grows when the
            application receives less LLC capacity under sharing; 0
            means streaming/insensitive, 1 means strongly sensitive.
        mlp: memory-level parallelism -- average number of overlapping
            DRAM accesses achievable by the big out-of-order core.  The
            in-order core cannot overlap misses (MLP ~ 1).
        branch_depends_on_load_prob: probability that a mispredicted
            branch depends on an in-flight long-latency load, delaying
            resolution and filling the ROB with un-ACE wrong-path
            instructions underneath the miss.
    """

    mix: InstructionMix = field(default_factory=InstructionMix)
    dep_distance_mean: float = 4.0
    branch_mpki: float = 2.0
    icache_mpki: float = 0.5
    l1d_mpki: float = 10.0
    l2_mpki: float = 3.0
    l3_mpki: float = 0.5
    cache_sensitivity: float = 0.3
    mlp: float = 1.5
    branch_depends_on_load_prob: float = 0.2

    def __post_init__(self) -> None:
        if self.dep_distance_mean < 1.0:
            raise ValueError("dep_distance_mean must be >= 1")
        if self.mlp < 1.0:
            raise ValueError("mlp must be >= 1")
        for name in ("branch_mpki", "icache_mpki", "l1d_mpki", "l2_mpki", "l3_mpki"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.cache_sensitivity <= 1.0:
            raise ValueError("cache_sensitivity must be in [0, 1]")
        if not 0.0 <= self.branch_depends_on_load_prob <= 1.0:
            raise ValueError("branch_depends_on_load_prob must be in [0, 1]")
        if self.l2_mpki > self.l1d_mpki + 1e-9:
            raise ValueError("L2 misses cannot exceed L1D misses")
        if self.l3_mpki > self.l2_mpki + 1e-9:
            raise ValueError("L3 misses cannot exceed L2 misses")
        branches_pki = 1000.0 * self.mix.branch
        if self.branch_mpki > branches_pki + 1e-9:
            raise ValueError("cannot mispredict more branches than exist")

    def l3_mpki_at_share(self, share_fraction: float) -> float:
        """Effective L3 MPKI when holding a fraction of LLC capacity.

        With full capacity (share 1.0) the application sees its
        isolated ``l3_mpki``; as capacity shrinks, misses grow toward
        the L2 miss rate (every L2 miss also misses in L3), scaled by
        ``cache_sensitivity``.
        """
        share = min(max(share_fraction, 0.0), 1.0)
        headroom = max(self.l2_mpki - self.l3_mpki, 0.0)
        return self.l3_mpki + headroom * self.cache_sensitivity * (1.0 - share)

    def with_l3_mpki(self, l3_mpki: float) -> "PhaseCharacteristics":
        return replace(self, l3_mpki=l3_mpki)


@dataclass(frozen=True)
class BenchmarkProfile:
    """A benchmark: a named sequence of phases.

    Attributes:
        name: benchmark name (SPEC CPU2006 naming).
        instructions: dynamic instruction count of the full run
            (1 billion in the paper's SimPoints; scaled runs divide
            this uniformly across phases).
        phases: ``(fraction, characteristics)`` pairs; fractions sum
            to 1 and give each phase's share of the instruction count.
    """

    name: str
    instructions: int
    phases: tuple[tuple[float, PhaseCharacteristics], ...]

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")
        if not self.phases:
            raise ValueError("benchmark needs at least one phase")
        total = sum(frac for frac, _ in self.phases)
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise ValueError(f"phase fractions sum to {total}, expected 1.0")
        if any(frac <= 0 for frac, _ in self.phases):
            raise ValueError("phase fractions must be positive")

    def phase_boundaries(self, instructions: int | None = None) -> list[int]:
        """Cumulative instruction boundaries of the phases.

        Returns ``len(phases) + 1`` monotonically increasing values
        starting at 0 and ending at ``instructions``.
        """
        n = self.instructions if instructions is None else instructions
        boundaries = [0]
        acc = 0.0
        for frac, _ in self.phases[:-1]:
            acc += frac
            boundaries.append(int(round(acc * n)))
        boundaries.append(n)
        return boundaries

    def phase_at(self, position: int) -> PhaseCharacteristics:
        """Characteristics in effect at an instruction position.

        Positions beyond the end (restarted applications) wrap around.
        """
        pos = position % self.instructions
        boundaries = self.phase_boundaries()
        for i, (_, chars) in enumerate(self.phases):
            if boundaries[i] <= pos < boundaries[i + 1]:
                return chars
        return self.phases[-1][1]

    def instructions_until_phase_change(self, position: int) -> int:
        """Instructions left in the current phase from a position."""
        pos = position % self.instructions
        boundaries = self.phase_boundaries()
        for i in range(len(self.phases)):
            if boundaries[i] <= pos < boundaries[i + 1]:
                return boundaries[i + 1] - pos
        return self.instructions - pos

    def scaled(self, instructions: int) -> "BenchmarkProfile":
        """The same benchmark at a different instruction count."""
        return replace(self, instructions=instructions)


def uniform_profile(
    name: str, characteristics: PhaseCharacteristics, instructions: int
) -> BenchmarkProfile:
    """A single-phase benchmark profile."""
    return BenchmarkProfile(
        name=name, instructions=instructions, phases=((1.0, characteristics),)
    )
