"""Multiprogram workload-mix construction (paper Section 5).

Benchmarks are split into H/M/L sensitivity classes by big-core AVF.
Two-program mixes come in six categories (HH, HM, HL, MM, ML, LL);
four-program mixes double the letters (HHHH, HHMM, HHLL, MMMM, MMLL,
LLLL); eight-program mixes double them again.  Six workloads are
generated per category (36 per program count), benchmarks are never
duplicated within a workload, and every benchmark occurs at least
once across the 36 mixes of each program count.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.workloads.spec2006 import benchmarks_by_class

#: Workloads generated per category (paper: 6).
WORKLOADS_PER_CATEGORY = 6

#: Category compositions by program count: category name -> class letters.
CATEGORIES = {
    2: ("HH", "HM", "HL", "MM", "ML", "LL"),
    4: ("HHHH", "HHMM", "HHLL", "MMMM", "MMLL", "LLLL"),
    8: (
        "HHHHHHHH",
        "HHHHMMMM",
        "HHHHLLLL",
        "MMMMMMMM",
        "MMMMLLLL",
        "LLLLLLLL",
    ),
}


@dataclass(frozen=True)
class WorkloadMix:
    """One multiprogram workload.

    Attributes:
        category: the class-composition label, e.g. ``"HHLL"``.
        benchmarks: benchmark names, one per program.
    """

    category: str
    benchmarks: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.benchmarks)) != len(self.benchmarks):
            raise ValueError("benchmarks within a workload must be distinct")
        if len(self.benchmarks) != len(self.category):
            raise ValueError("one class letter per benchmark required")


def _draw_mix(
    category: str, pools: dict[str, list[str]], rng: np.random.Generator
) -> tuple[str, ...]:
    """Draw one workload for a category without intra-mix duplicates."""
    chosen: list[str] = []
    needed = Counter(category)
    for letter, count in needed.items():
        pool = [b for b in pools[letter] if b not in chosen]
        if count > len(pool):
            raise ValueError(
                f"category {category}: class {letter} has only "
                f"{len(pool)} distinct benchmarks"
            )
        picks = rng.choice(len(pool), size=count, replace=False)
        chosen.extend(pool[i] for i in picks)
    # Restore the category's letter order (H slots first, etc.).
    by_class: dict[str, list[str]] = {}
    start = 0
    for letter, count in needed.items():
        by_class[letter] = chosen[start : start + count]
        start += count
    ordered = []
    take = {letter: 0 for letter in needed}
    for letter in category:
        ordered.append(by_class[letter][take[letter]])
        take[letter] += 1
    return tuple(ordered)


def _ensure_coverage(
    workloads: list[WorkloadMix],
    pools: dict[str, list[str]],
    class_of: dict[str, str],
) -> list[WorkloadMix]:
    """Swap benchmarks in so every benchmark occurs at least once."""
    counts = Counter(b for w in workloads for b in w.benchmarks)
    missing = [b for names in pools.values() for b in names if counts[b] == 0]
    result = list(workloads)
    for bench in missing:
        letter = class_of[bench]
        # Replace the globally most frequent same-class benchmark in
        # some workload that does not already contain `bench`.
        best: tuple[int, int, str] | None = None
        for wi, mix in enumerate(result):
            if bench in mix.benchmarks:
                continue
            for slot, (existing, slot_letter) in enumerate(
                zip(mix.benchmarks, mix.category)
            ):
                if slot_letter != letter or counts[existing] <= 1:
                    continue
                if best is None or counts[existing] > counts[best[2]]:
                    best = (wi, slot, existing)
        if best is None:
            raise RuntimeError(f"cannot place benchmark {bench}")
        wi, slot, existing = best
        names = list(result[wi].benchmarks)
        names[slot] = bench
        result[wi] = WorkloadMix(result[wi].category, tuple(names))
        counts[existing] -= 1
        counts[bench] += 1
    return result


def generate_workloads(
    num_programs: int,
    seed: int = 42,
    classes: dict[str, list[str]] | None = None,
) -> list[WorkloadMix]:
    """The paper's 36 workload mixes for a program count (2, 4 or 8).

    Args:
        num_programs: 2, 4 or 8.
        seed: RNG seed; the default reproduces this repository's
            canonical workload set.
        classes: ``{"H": [...], "M": [...], "L": [...]}`` pools;
            derived from big-core AVF when omitted.
    """
    if num_programs not in CATEGORIES:
        raise ValueError("program count must be one of 2, 4, 8")
    pools = classes if classes is not None else benchmarks_by_class()
    class_of = {b: letter for letter, names in pools.items() for b in names}
    rng = np.random.default_rng(seed)
    workloads = [
        WorkloadMix(category, _draw_mix(category, pools, rng))
        for category in CATEGORIES[num_programs]
        for _ in range(WORKLOADS_PER_CATEGORY)
    ]
    return _ensure_coverage(workloads, pools, class_of)
