"""Phase profiling: derive a benchmark profile from a concrete trace.

The inverse of `repro.workloads.generator`, in the spirit of SimPoint
(Sherwood et al. [23], which the paper uses to pick its 1 B-instruction
intervals): slice a dynamic trace into fixed-size intervals, measure
each interval's characteristics (instruction mix, dependency distance,
branch/I-cache miss rates, cache miss rates through a real hierarchy,
memory-level parallelism, load-dependent branches), cluster the
intervals, and emit a :class:`BenchmarkProfile` whose phases are the
contiguous cluster runs.

This closes the loop trace -> profile -> trace and lets users bring
their own traces into the mechanistic (paper-scale) simulation flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.machines import MemoryConfig
from repro.isa.instruction import NUM_CLASSES, InstructionClass
from repro.isa.trace import Trace
from repro.memory.hierarchy import (
    LEVEL_DRAM,
    LEVEL_L2,
    LEVEL_L3,
    CacheHierarchy,
)
from repro.workloads.characteristics import (
    BenchmarkProfile,
    InstructionMix,
    PhaseCharacteristics,
)

#: Default interval length in instructions.
DEFAULT_INTERVAL = 10_000
#: Out-of-order window size used for the MLP estimate.
_MLP_WINDOW = 128


@dataclass(frozen=True)
class IntervalStats:
    """Measured characteristics of one trace interval."""

    start: int
    length: int
    mix: InstructionMix
    dep_distance_mean: float
    branch_mpki: float
    icache_mpki: float
    l1d_mpki: float
    l2_mpki: float
    l3_mpki: float
    mlp: float
    branch_depends_on_load_prob: float

    def feature_vector(self) -> np.ndarray:
        """Numeric features used for phase clustering."""
        return np.array([
            self.mix.load + self.mix.store,
            self.mix.branch,
            self.dep_distance_mean,
            self.branch_mpki,
            self.icache_mpki,
            self.l1d_mpki,
            self.l3_mpki,
            self.mlp,
        ])

    def to_characteristics(self) -> PhaseCharacteristics:
        return PhaseCharacteristics(
            mix=self.mix,
            dep_distance_mean=max(self.dep_distance_mean, 1.0),
            branch_mpki=min(self.branch_mpki, 1000.0 * self.mix.branch),
            icache_mpki=self.icache_mpki,
            l1d_mpki=self.l1d_mpki,
            l2_mpki=min(self.l2_mpki, self.l1d_mpki),
            l3_mpki=min(self.l3_mpki, self.l2_mpki, self.l1d_mpki),
            cache_sensitivity=0.3,  # not observable from one trace
            mlp=max(self.mlp, 1.0),
            branch_depends_on_load_prob=self.branch_depends_on_load_prob,
        )


def _measure_mix(window: Trace) -> InstructionMix:
    n = len(window)
    counts = np.bincount(window.classes, minlength=NUM_CLASSES)
    fractions = {
        cls: float(counts[cls]) / n for cls in InstructionClass
    }
    # Normalize away rounding noise.
    total = sum(fractions.values())
    return InstructionMix(**{
        "nop": fractions[InstructionClass.NOP] / total,
        "int_alu": fractions[InstructionClass.INT_ALU] / total,
        "int_mul": fractions[InstructionClass.INT_MUL] / total,
        "int_div": fractions[InstructionClass.INT_DIV] / total,
        "fp_add": fractions[InstructionClass.FP_ADD] / total,
        "fp_mul": fractions[InstructionClass.FP_MUL] / total,
        "fp_div": fractions[InstructionClass.FP_DIV] / total,
        "load": fractions[InstructionClass.LOAD] / total,
        "store": fractions[InstructionClass.STORE] / total,
        "branch": fractions[InstructionClass.BRANCH] / total,
    })


def _estimate_mlp(window: Trace, dram_miss_flags: np.ndarray) -> float:
    """Average DRAM misses overlapping in an OoO instruction window."""
    positions = np.nonzero(dram_miss_flags)[0]
    if positions.size <= 1:
        return 1.0
    # Misses overlapping miss i are those in [pos_i, pos_i + window);
    # positions are sorted, so that count is a searchsorted delta.
    overlaps = (
        np.searchsorted(positions, positions + _MLP_WINDOW, side="left")
        - np.arange(positions.size)
    )
    return float(max(np.mean(overlaps), 1.0))


def _load_dependence(window: Trace) -> float:
    """Fraction of mispredicted branches depending on a load."""
    mispredicted = np.nonzero(window.mispredicted)[0]
    if mispredicted.size == 0:
        return 0.0
    deps = window.dep1[mispredicted]
    producers = (mispredicted - deps)[deps > 0]
    hits = int(
        np.count_nonzero(
            window.classes[producers] == InstructionClass.LOAD
        )
    )
    return hits / mispredicted.size


def measure_intervals(
    trace: Trace,
    interval: int = DEFAULT_INTERVAL,
    memory: MemoryConfig | None = None,
) -> list[IntervalStats]:
    """Measure per-interval characteristics of a trace.

    Data addresses run through a real (initially cold) cache hierarchy
    to obtain per-interval L1D/L2/L3 miss rates, exactly as a
    profiling run on the simulator would.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    if len(trace) < interval:
        raise ValueError("trace shorter than one interval")
    memory = memory if memory is not None else MemoryConfig()
    hierarchy = CacheHierarchy(memory, frequency_ghz=2.66)
    stats: list[IntervalStats] = []
    memory_classes = (InstructionClass.LOAD, InstructionClass.STORE)
    for start in range(0, len(trace) - interval + 1, interval):
        window = trace.slice(start, start + interval)
        n = len(window)
        is_mem = np.isin(window.classes, np.array(memory_classes, dtype=np.int8))
        mem_positions = np.nonzero(is_mem)[0]
        _, levels = hierarchy.access_data_batch(
            window.addresses[mem_positions]
        )
        l1_misses = int(np.count_nonzero(levels >= LEVEL_L2))
        l2_misses = int(np.count_nonzero(levels >= LEVEL_L3))
        l3_misses = int(np.count_nonzero(levels == LEVEL_DRAM))
        dram_flags = np.zeros(n, dtype=bool)
        dram_flags[mem_positions[levels == LEVEL_DRAM]] = True
        deps = window.dep1[window.dep1 > 0]
        stats.append(IntervalStats(
            start=start,
            length=n,
            mix=_measure_mix(window),
            dep_distance_mean=float(deps.mean()) if deps.size else 1.0,
            branch_mpki=window.branch_mpki,
            icache_mpki=window.icache_mpki,
            l1d_mpki=1000.0 * l1_misses / n,
            l2_mpki=1000.0 * l2_misses / n,
            l3_mpki=1000.0 * l3_misses / n,
            mlp=_estimate_mlp(window, dram_flags),
            branch_depends_on_load_prob=_load_dependence(window),
        ))
    return stats


def _cluster(features: np.ndarray, phases: int, seed: int) -> np.ndarray:
    """K-means cluster labels for normalized interval features."""
    from scipy.cluster.vq import kmeans2

    mean = features.mean(axis=0)
    std = features.std(axis=0)
    std[std == 0] = 1.0
    normalized = (features - mean) / std
    _, labels = kmeans2(normalized, phases, seed=seed, minit="++")
    return labels


def _mean_stats(intervals: list[IntervalStats]) -> PhaseCharacteristics:
    """Average a group of intervals into one phase's characteristics."""
    arrays = np.array([iv.feature_vector() for iv in intervals])
    representative = intervals[len(intervals) // 2]
    mean_of = lambda attr: float(np.mean([getattr(iv, attr) for iv in intervals]))
    mix = representative.mix  # mixes are near-identical within a phase
    l1d = mean_of("l1d_mpki")
    l2 = min(mean_of("l2_mpki"), l1d)
    l3 = min(mean_of("l3_mpki"), l2)
    return PhaseCharacteristics(
        mix=mix,
        dep_distance_mean=max(mean_of("dep_distance_mean"), 1.0),
        branch_mpki=min(mean_of("branch_mpki"), 1000.0 * mix.branch),
        icache_mpki=mean_of("icache_mpki"),
        l1d_mpki=l1d,
        l2_mpki=l2,
        l3_mpki=l3,
        cache_sensitivity=0.3,
        mlp=max(mean_of("mlp"), 1.0),
        branch_depends_on_load_prob=mean_of("branch_depends_on_load_prob"),
    )


def profile_trace(
    trace: Trace,
    *,
    phases: int = 2,
    interval: int = DEFAULT_INTERVAL,
    instructions: int | None = None,
    seed: int = 0,
    name: str | None = None,
) -> BenchmarkProfile:
    """Derive a benchmark profile from a trace.

    Args:
        trace: the dynamic instruction trace to profile.
        phases: number of phase clusters to look for (contiguous runs
            of the same cluster become profile phases, so the emitted
            profile can have more segments than clusters).
        interval: profiling interval in instructions.
        instructions: instruction count of the emitted profile
            (defaults to the trace length; pass e.g. 1_000_000_000 to
            extrapolate the trace to SimPoint scale).
        seed: clustering seed.
        name: profile name (defaults to the trace name).
    """
    if phases <= 0:
        raise ValueError("need at least one phase")
    stats = measure_intervals(trace, interval)
    if len(stats) < phases:
        raise ValueError(
            f"only {len(stats)} intervals for {phases} phases; "
            "shrink the interval or the phase count"
        )
    features = np.array([iv.feature_vector() for iv in stats])
    if phases == 1:
        labels = np.zeros(len(stats), dtype=int)
    else:
        labels = _cluster(features, phases, seed)
    # Run-length encode the label sequence into contiguous segments.
    segments: list[tuple[int, int]] = []  # (start index, end index)
    start = 0
    for i in range(1, len(labels) + 1):
        if i == len(labels) or labels[i] != labels[start]:
            segments.append((start, i))
            start = i
    total = sum(end - begin for begin, end in segments)
    profile_phases = tuple(
        ((end - begin) / total, _mean_stats(stats[begin:end]))
        for begin, end in segments
    )
    return BenchmarkProfile(
        name=name if name is not None else trace.name,
        instructions=instructions if instructions is not None else len(trace),
        phases=profile_phases,
    )
