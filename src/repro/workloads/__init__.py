"""Synthetic SPEC CPU2006-like workload substrate."""

from repro.workloads.characteristics import (
    BenchmarkProfile,
    InstructionMix,
    PhaseCharacteristics,
    uniform_profile,
)
from repro.workloads.spec2006 import (
    BENCHMARK_NAMES,
    SIMPOINT_INSTRUCTIONS,
    SUITE,
    benchmark,
    benchmarks_by_class,
    big_core_avf,
    classify_benchmarks,
)

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkProfile",
    "InstructionMix",
    "PhaseCharacteristics",
    "SIMPOINT_INSTRUCTIONS",
    "SUITE",
    "benchmark",
    "benchmarks_by_class",
    "big_core_avf",
    "classify_benchmarks",
    "uniform_profile",
]
