"""Synthetic trace generator: realize a benchmark profile as a trace.

Given :class:`~repro.workloads.characteristics.PhaseCharacteristics`,
the generator emits a concrete dynamic instruction stream whose
statistics approximate the profile: instruction mix, geometric
register-dependency distances, branch misprediction and I-cache miss
rates, and -- via a reuse-distance mixture -- data-address streams
that produce roughly the target L1D/L2/L3 miss rates when run through
the real LRU caches of `repro.memory`.

Mispredicted branches are made to depend on a recent load with
probability ``branch_depends_on_load_prob``, so the trace-driven
out-of-order model reproduces the "wrong path under a miss" effect
that gives mcf/libquantum their low AVF.

Traces are used by the trace-driven pipeline models for validation and
small-scale studies; paper-scale runs use the mechanistic model.
"""

from __future__ import annotations

import numpy as np

from repro.isa.instruction import InstructionClass
from repro.isa.trace import Trace
from repro.workloads.characteristics import BenchmarkProfile, PhaseCharacteristics

#: Cache line size assumed when crafting reuse distances.
_LINE = 64
#: Reuse-distance bands (in distinct-ish history positions) targeting
#: each hierarchy level: L1 (32 KB = 512 lines), L2 (256 KB = 4 K
#: lines), L3 (8 MB = 128 K lines).
_L1_BAND = (1, 128)
_L2_BAND = (700, 3000)
_L3_BAND = (6000, 50000)

_MEMORY_CLASSES = (InstructionClass.LOAD, InstructionClass.STORE)


def _draw_classes(
    chars: PhaseCharacteristics, n: int, rng: np.random.Generator
) -> np.ndarray:
    mix = chars.mix.as_dict()
    classes = np.array(list(mix.keys()), dtype=np.int8)
    probs = np.array(list(mix.values()))
    probs = probs / probs.sum()
    return rng.choice(classes, size=n, p=probs)


def _draw_dependencies(
    chars: PhaseCharacteristics, n: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Geometric dependency distances with the profile's mean."""
    mean = chars.dep_distance_mean
    p = min(1.0, 1.0 / mean)
    dep1 = rng.geometric(p, size=n).astype(np.int32)
    # A second operand exists for roughly half the instructions and is
    # usually further away (older value).
    dep2 = np.where(
        rng.random(n) < 0.5, rng.geometric(p / 2.0, size=n), 0
    ).astype(np.int32)
    index = np.arange(n, dtype=np.int64)
    dep1 = np.minimum(dep1, index).astype(np.int32)
    dep2 = np.minimum(dep2, index).astype(np.int32)
    return dep1, dep2


def _draw_addresses(
    chars: PhaseCharacteristics,
    classes: np.ndarray,
    rng: np.random.Generator,
    start_address: int,
) -> np.ndarray:
    """Data addresses from a reuse-distance mixture.

    Each memory access either re-references a line at a reuse distance
    targeting a hierarchy level or streams to a fresh line (DRAM).
    """
    n = len(classes)
    addresses = np.zeros(n, dtype=np.int64)
    is_mem = np.isin(classes, np.array(_MEMORY_CLASSES, dtype=np.int8))
    mem_count = int(is_mem.sum())
    if mem_count == 0:
        return addresses
    accesses_pki = 1000.0 * (chars.mix.load + chars.mix.store)
    # Per-access probabilities of being serviced by each level.
    p_l2 = min(1.0, (chars.l1d_mpki - chars.l2_mpki) / accesses_pki)
    p_l3 = min(1.0, (chars.l2_mpki - chars.l3_mpki) / accesses_pki)
    p_mem = min(1.0, chars.l3_mpki / accesses_pki)
    p_l1 = max(0.0, 1.0 - p_l2 - p_l3 - p_mem)
    levels = rng.choice(
        4, size=mem_count, p=np.array([p_l1, p_l2, p_l3, p_mem])
    )
    # An LRU stack of distinct lines: re-referencing the line at stack
    # distance d guarantees it hits in any LRU cache holding >= d
    # lines and misses in smaller ones, so the bands map directly to
    # hierarchy levels.
    stack: list[int] = []
    fresh = start_address
    bands = {0: _L1_BAND, 1: _L2_BAND, 2: _L3_BAND}
    mem_addresses = np.zeros(mem_count, dtype=np.int64)
    for j in range(mem_count):
        level = int(levels[j])
        if level == 3 or not stack:
            line = fresh
            fresh += _LINE
        else:
            lo, hi = bands[level]
            hi = min(hi, len(stack))
            lo = min(lo, hi)
            distance = int(rng.integers(lo, hi + 1))
            line = stack[-distance]
            del stack[-distance]
        mem_addresses[j] = line
        stack.append(line)
        if len(stack) > _L3_BAND[1] + 1:
            del stack[0]
    addresses[is_mem] = mem_addresses
    return addresses


def _link_branches_to_loads(
    classes: np.ndarray,
    dep1: np.ndarray,
    mispredicted: np.ndarray,
    chars: PhaseCharacteristics,
    rng: np.random.Generator,
) -> None:
    """Make mispredicted branches depend on their most recent load."""
    p = chars.branch_depends_on_load_prob
    if p <= 0:
        return
    load_positions = np.nonzero(classes == InstructionClass.LOAD)[0]
    if load_positions.size == 0:
        return
    for i in np.nonzero(mispredicted)[0]:
        if rng.random() >= p:
            continue
        prior = load_positions[load_positions < i]
        if prior.size:
            dep1[i] = i - int(prior[-1])


def generate_phase_trace(
    chars: PhaseCharacteristics,
    instructions: int,
    rng: np.random.Generator,
    name: str = "phase",
    start_address: int = 1 << 20,
) -> Trace:
    """Generate a trace for a single phase."""
    if instructions <= 0:
        raise ValueError("instruction count must be positive")
    classes = _draw_classes(chars, instructions, rng)
    dep1, dep2 = _draw_dependencies(chars, instructions, rng)
    # NOPs have no dependencies.
    nops = classes == InstructionClass.NOP
    dep1[nops] = 0
    dep2[nops] = 0
    branches = classes == InstructionClass.BRANCH
    branch_frac = max(chars.mix.branch, 1e-9)
    p_miss = min(1.0, chars.branch_mpki / 1000.0 / branch_frac)
    mispredicted = branches & (rng.random(instructions) < p_miss)
    icache_miss = rng.random(instructions) < chars.icache_mpki / 1000.0
    addresses = _draw_addresses(chars, classes, rng, start_address)
    _link_branches_to_loads(classes, dep1, mispredicted, chars, rng)
    return Trace(
        classes=classes,
        dep1=dep1,
        dep2=dep2,
        addresses=addresses,
        mispredicted=mispredicted,
        icache_miss=icache_miss,
        name=name,
    )


def generate_trace(
    profile: BenchmarkProfile,
    instructions: int | None = None,
    seed: int = 0,
) -> Trace:
    """Generate a full trace for a benchmark profile.

    Args:
        profile: the benchmark to realize.
        instructions: trace length (defaults to the profile's count;
            use a smaller value for trace-driven studies).
        seed: RNG seed (same seed, same trace).
    """
    n = profile.instructions if instructions is None else instructions
    scaled = profile.scaled(n)
    rng = np.random.default_rng(seed)
    pieces = []
    boundaries = scaled.phase_boundaries()
    for i, (_, chars) in enumerate(scaled.phases):
        length = boundaries[i + 1] - boundaries[i]
        if length <= 0:
            continue
        # Distinct address regions per phase keep phases' working sets
        # disjoint, as a real program's phases typically are.
        pieces.append(
            generate_phase_trace(
                chars,
                length,
                rng,
                name=f"{profile.name}.phase{i}",
                start_address=(i + 1) << 28,
            )
        )
    return Trace.concatenate(pieces, name=profile.name)
