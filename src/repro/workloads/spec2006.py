"""Synthetic SPEC CPU2006 benchmark profiles.

The paper evaluates 1-billion-instruction SimPoints of the 29 SPEC
CPU2006 benchmarks.  We cannot ship SPEC, so this module defines one
synthetic :class:`~repro.workloads.characteristics.BenchmarkProfile`
per benchmark whose statistics are chosen to reproduce the paper's
qualitative characterization (Section 2.3, Figures 1 and 2):

* *milc*, *lbm*, *GemsFDTD*, *bwaves*, *leslie3d* -- memory-intensive
  with high MLP: DRAM misses block the ROB head and fill the window
  with ACE state -> high AVF.
* *zeusmp*, *cactusADM*, *hmmer* -- compute-intensive: high IPC and
  high occupancy in the back-end queues -> high AVF.
* *mcf*, *libquantum*, *omnetpp*, *astar* -- memory-intensive but
  mispredicted branches depend on the missing loads, so the ROB fills
  with un-ACE wrong-path instructions underneath the miss -> low AVF.
* *gcc*, *perlbench*, *sjeng*, *gobmk* -- front-end bound (branch
  mispredictions and/or I-cache misses drain the pipeline) -> low AVF.
* *calculix* -- exhibits a large ABC drop in its final phase
  (Figure 4); *povray* -- nearly constant ABC (Figure 4);
  *xalancbmk*, *soplex*, *leslie3d*, *dealII* -- phase-varying
  (the Figure 11 sampling-rate discussion).

The H/M/L sensitivity classes are not hardcoded: they are derived from
big-core AVF exactly as in the paper (8 highest = H, 8 lowest = L,
remaining 13 = M) by :func:`classify_benchmarks`.
"""

from __future__ import annotations

from repro.config.cores import big_core_config
from repro.config.machines import MemoryConfig
from repro.cores.base import ISOLATED
from repro.cores.mechanistic import analyze_big_phase
from repro.workloads.characteristics import (
    BenchmarkProfile,
    InstructionMix,
    PhaseCharacteristics,
)

#: Dynamic instruction count of each benchmark's SimPoint.
SIMPOINT_INSTRUCTIONS = 1_000_000_000

# -- Instruction-mix presets ------------------------------------------------

INT_CONTROL = InstructionMix(
    nop=0.02, int_alu=0.40, int_mul=0.01, load=0.24, store=0.11, branch=0.22
)
INT_COMPUTE = InstructionMix(
    nop=0.02, int_alu=0.47, int_mul=0.03, load=0.26, store=0.10, branch=0.12
)
MEM_POINTER = InstructionMix(
    nop=0.02, int_alu=0.35, int_mul=0.0, load=0.31, store=0.09, branch=0.23
)
FP_STREAM = InstructionMix(
    nop=0.01, int_alu=0.18, int_mul=0.0, fp_add=0.18, fp_mul=0.14, load=0.30, store=0.13,
    branch=0.06,
)
FP_COMPUTE = InstructionMix(
    nop=0.01, int_alu=0.15, int_mul=0.0, fp_add=0.24, fp_mul=0.20, fp_div=0.02, load=0.24,
    store=0.08, branch=0.06,
)


def _phase(
    mix: InstructionMix,
    dep: float,
    brm: float,
    icm: float,
    l1: float,
    l2: float,
    l3: float,
    sens: float,
    mlp: float,
    pbl: float = 0.05,
) -> PhaseCharacteristics:
    """Shorthand constructor used by the benchmark table below."""
    return PhaseCharacteristics(
        mix=mix,
        dep_distance_mean=dep,
        branch_mpki=brm,
        icache_mpki=icm,
        l1d_mpki=l1,
        l2_mpki=l2,
        l3_mpki=l3,
        cache_sensitivity=sens,
        mlp=mlp,
        branch_depends_on_load_prob=pbl,
    )


def _bench(name: str, *phases: tuple[float, PhaseCharacteristics]) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name, instructions=SIMPOINT_INSTRUCTIONS, phases=tuple(phases)
    )


def _build_suite() -> dict[str, BenchmarkProfile]:
    benches = [
        # ---- SPEC CPU2006 integer ----
        _bench(  # front-end bound: mispredicts + I-cache misses
            "perlbench",
            (1.0, _phase(INT_CONTROL, 4.0, 8.0, 6.0, 8.0, 2.0, 0.5, 0.5, 1.2)),
        ),
        _bench(  # moderate mispredicts, cache-sensitive
            "bzip2",
            (1.0, _phase(INT_COMPUTE, 4.5, 6.0, 0.3, 10.0, 4.0, 1.5, 0.5, 1.8, 0.2)),
        ),
        _bench(  # I-cache dominated front end
            "gcc",
            (1.0, _phase(INT_CONTROL, 4.0, 7.0, 8.0, 12.0, 4.0, 1.5, 0.4, 1.5, 0.1)),
        ),
        _bench(  # pointer chasing; branches depend on missing loads
            "mcf",
            (1.0, _phase(MEM_POINTER, 3.5, 12.0, 0.3, 45.0, 30.0, 20.0, 0.5, 1.8, 0.75)),
        ),
        _bench(  # branch-misprediction bound game tree search
            "gobmk",
            (1.0, _phase(INT_CONTROL, 3.5, 13.0, 3.0, 6.0, 2.0, 0.6, 0.3, 1.2)),
        ),
        _bench(  # high-IPC integer compute, hardly any mispredicts
            "hmmer",
            (1.0, _phase(INT_COMPUTE, 7.0, 0.6, 0.05, 6.0, 1.5, 0.3, 0.4, 1.5)),
        ),
        _bench(  # branch-misprediction bound chess search
            "sjeng",
            (1.0, _phase(INT_CONTROL, 3.8, 11.0, 1.5, 5.0, 1.5, 0.4, 0.3, 1.2)),
        ),
        _bench(  # streaming memory; branches depend on loaded values
            "libquantum",
            (1.0, _phase(MEM_POINTER, 4.5, 9.0, 0.05, 30.0, 22.0, 17.0, 0.05, 2.2, 0.75)),
        ),
        _bench(  # video encode: regular compute, modest misses
            "h264ref",
            (1.0, _phase(INT_COMPUTE, 6.0, 2.0, 1.0, 5.0, 1.2, 0.2, 0.4, 1.3)),
        ),
        _bench(  # discrete-event simulation: pointer-heavy, mispredicts
            "omnetpp",
            (1.0, _phase(MEM_POINTER, 3.8, 9.0, 2.0, 20.0, 12.0, 6.0, 0.6, 1.5, 0.45)),
        ),
        _bench(  # path finding: data-dependent branches over large maps
            "astar",
            (1.0, _phase(MEM_POINTER, 3.2, 10.0, 0.3, 12.0, 6.0, 2.5, 0.5, 1.3, 0.5)),
        ),
        _bench(  # XML transform: phase-varying front-end behaviour
            "xalancbmk",
            (0.4, _phase(INT_CONTROL, 4.0, 7.0, 4.0, 10.0, 4.0, 1.5, 0.6, 1.4, 0.2)),
            (0.3, _phase(INT_CONTROL, 5.5, 3.0, 1.0, 6.0, 2.0, 0.6, 0.6, 1.4, 0.1)),
            (0.3, _phase(INT_CONTROL, 3.8, 8.0, 5.0, 12.0, 5.0, 2.0, 0.6, 1.4, 0.2)),
        ),
        # ---- SPEC CPU2006 floating point ----
        _bench(  # streaming FP with deep MLP
            "bwaves",
            (1.0, _phase(FP_STREAM, 6.5, 0.6, 0.05, 18.0, 10.0, 6.0, 0.15, 4.2, 0.02)),
        ),
        _bench(  # quantum chemistry: compute with tiny footprint
            "gamess",
            (1.0, _phase(FP_COMPUTE, 5.5, 2.5, 1.5, 3.0, 0.8, 0.1, 0.4, 1.2)),
        ),
        _bench(  # lattice QCD: memory-intensive, high MLP, ROB-filling
            "milc",
            (1.0, _phase(FP_STREAM, 7.0, 0.3, 0.05, 25.0, 18.0, 12.0, 0.1, 4.5, 0.02)),
        ),
        _bench(  # CFD: compute-intensive, fills the back-end queues
            "zeusmp",
            (1.0, _phase(FP_COMPUTE, 7.5, 0.5, 0.05, 12.0, 5.0, 2.5, 0.2, 3.5, 0.02)),
        ),
        _bench(  # molecular dynamics: compute, modest memory
            "gromacs",
            (1.0, _phase(FP_COMPUTE, 6.0, 2.0, 0.3, 6.0, 2.0, 0.8, 0.4, 1.8)),
        ),
        _bench(  # numerical relativity: long dependence chains, misses
            "cactusADM",
            (1.0, _phase(FP_COMPUTE, 6.5, 0.2, 0.05, 10.0, 6.0, 3.5, 0.15, 2.5, 0.02)),
        ),
        _bench(  # CFD: memory-heavy with phase behaviour
            "leslie3d",
            (0.5, _phase(FP_STREAM, 6.0, 0.8, 0.1, 16.0, 8.0, 4.5, 0.3, 3.2, 0.05)),
            (0.3, _phase(FP_STREAM, 6.5, 0.4, 0.1, 20.0, 11.0, 7.0, 0.3, 3.8, 0.05)),
            (0.2, _phase(FP_COMPUTE, 6.0, 1.2, 0.1, 9.0, 3.5, 1.5, 0.3, 2.0, 0.05)),
        ),
        _bench(  # molecular dynamics: steady compute
            "namd",
            (1.0, _phase(FP_COMPUTE, 6.5, 1.2, 0.1, 4.0, 1.2, 0.4, 0.4, 1.6)),
        ),
        _bench(  # finite elements: two distinct phases
            "dealII",
            (0.5, _phase(FP_COMPUTE, 6.0, 2.0, 0.5, 7.0, 2.5, 1.0, 0.5, 1.8, 0.1)),
            (0.5, _phase(FP_COMPUTE, 4.5, 5.0, 1.0, 10.0, 4.0, 1.5, 0.5, 1.5, 0.2)),
        ),
        _bench(  # LP solver: alternates pricing and solving phases
            "soplex",
            (0.6, _phase(FP_STREAM, 4.5, 5.0, 1.0, 15.0, 8.0, 4.0, 0.6, 2.0, 0.3)),
            (0.4, _phase(FP_COMPUTE, 6.0, 2.0, 0.5, 8.0, 3.0, 1.0, 0.6, 2.0, 0.1)),
        ),
        _bench(  # ray tracing: tiny footprint, remarkably flat ABC
            "povray",
            (1.0, _phase(FP_COMPUTE, 5.0, 4.0, 1.0, 4.0, 1.0, 0.15, 0.3, 1.2)),
        ),
        _bench(  # structural mechanics: big ABC drop in the final phase
            "calculix",
            (0.75, _phase(FP_COMPUTE, 7.0, 1.0, 0.2, 8.0, 3.0, 1.2, 0.4, 2.5, 0.05)),
            (0.25, _phase(INT_CONTROL, 3.5, 9.0, 2.0, 4.0, 1.0, 0.3, 0.4, 1.2, 0.1)),
        ),
        _bench(  # electromagnetics: streaming with deep MLP
            "GemsFDTD",
            (1.0, _phase(FP_STREAM, 6.0, 0.4, 0.1, 22.0, 12.0, 7.0, 0.2, 3.8, 0.02)),
        ),
        _bench(  # quantum chemistry: compute with some front-end misses
            "tonto",
            (1.0, _phase(FP_COMPUTE, 5.0, 3.0, 2.0, 5.0, 1.5, 0.5, 0.4, 1.4)),
        ),
        _bench(  # fluid dynamics: pure streaming, insensitive to LLC
            "lbm",
            (1.0, _phase(FP_STREAM, 6.0, 0.2, 0.02, 28.0, 20.0, 15.0, 0.05, 5.0, 0.02)),
        ),
        _bench(  # weather model: mixed compute/memory
            "wrf",
            (1.0, _phase(FP_COMPUTE, 5.5, 2.0, 1.2, 9.0, 4.0, 2.0, 0.4, 2.2, 0.1)),
        ),
        _bench(  # speech recognition: memory-sensitive FP
            "sphinx3",
            (1.0, _phase(FP_STREAM, 5.0, 3.5, 0.8, 12.0, 5.0, 2.5, 0.5, 2.0, 0.2)),
        ),
    ]
    return {b.name: b for b in benches}


#: The full synthetic suite, keyed by benchmark name.
SUITE: dict[str, BenchmarkProfile] = _build_suite()

#: Benchmark names in suite order.
BENCHMARK_NAMES: tuple[str, ...] = tuple(SUITE)

#: Sensitivity classes (paper Section 5): 8 highest big-core AVF = H,
#: 8 lowest = L, remaining 13 = M.
HIGH_COUNT = 8
LOW_COUNT = 8


def benchmark(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name."""
    try:
        return SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARK_NAMES)}"
        ) from None


def big_core_avf(profile: BenchmarkProfile, memory: MemoryConfig | None = None) -> float:
    """Whole-run big-core AVF of a profile (isolated execution).

    AVF is time-weighted across phases: each phase contributes in
    proportion to the cycles it executes for, exactly as a full-run
    ACE-bit measurement would.
    """
    core = big_core_config()
    mem = memory if memory is not None else MemoryConfig()
    total_cycles = 0.0
    total_ace = 0.0
    for frac, chars in profile.phases:
        analysis = analyze_big_phase(chars, core, mem, ISOLATED)
        cycles = frac * profile.instructions * analysis.cpi
        total_cycles += cycles
        total_ace += analysis.total_ace_bits_per_cycle * cycles
    return total_ace / total_cycles / core.total_ace_capacity_bits


def classify_benchmarks(
    memory: MemoryConfig | None = None,
) -> dict[str, str]:
    """Assign H/M/L sensitivity classes from big-core AVF.

    Returns a mapping ``name -> "H" | "M" | "L"`` following the paper:
    the 8 benchmarks with the highest big-core AVF are ``H``, the 8
    lowest are ``L``, and the remaining 13 are ``M``.
    """
    avf = {name: big_core_avf(profile, memory) for name, profile in SUITE.items()}
    ordered = sorted(avf, key=avf.get)
    classes: dict[str, str] = {}
    for i, name in enumerate(ordered):
        if i < LOW_COUNT:
            classes[name] = "L"
        elif i >= len(ordered) - HIGH_COUNT:
            classes[name] = "H"
        else:
            classes[name] = "M"
    return classes


def benchmarks_by_class(memory: MemoryConfig | None = None) -> dict[str, list[str]]:
    """H/M/L class -> benchmark names, each list sorted by AVF."""
    avf = {name: big_core_avf(profile, memory) for name, profile in SUITE.items()}
    classes = classify_benchmarks(memory)
    grouped: dict[str, list[str]] = {"H": [], "M": [], "L": []}
    for name in sorted(avf, key=avf.get):
        grouped[classes[name]].append(name)
    return grouped
