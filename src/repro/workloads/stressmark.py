"""AVF stressmark search (after Nair et al., MICRO 2010).

The paper's related work cites AVF stressmarks: synthetic workloads
constructed to *maximize* a processor's soft-error vulnerability,
bounding the worst case.  This module searches the
:class:`PhaseCharacteristics` space with a seeded hill climber over
the mechanistic model, yielding (a) an upper bound on big-core AVF
against which the SPEC-like suite can be compared, and (b) a stress
workload usable in scheduling experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.config.cores import CoreConfig, big_core_config
from repro.config.machines import MemoryConfig
from repro.cores.base import ISOLATED
from repro.cores.mechanistic import analyze_phase
from repro.workloads.characteristics import (
    BenchmarkProfile,
    InstructionMix,
    PhaseCharacteristics,
)

#: Search bounds per tunable scalar knob.
_BOUNDS = {
    "dep_distance_mean": (1.0, 16.0),
    "branch_mpki": (0.0, 20.0),
    "icache_mpki": (0.0, 20.0),
    "l1d_mpki": (0.0, 60.0),
    "mlp": (1.0, 8.0),
    "branch_depends_on_load_prob": (0.0, 1.0),
}


@dataclass(frozen=True)
class StressmarkResult:
    """Outcome of a stressmark search.

    Attributes:
        characteristics: the AVF-maximizing phase found.
        avf: its big-core AVF under the mechanistic model.
        evaluations: model evaluations spent.
    """

    characteristics: PhaseCharacteristics
    avf: float
    evaluations: int

    def profile(self, instructions: int = 1_000_000_000) -> BenchmarkProfile:
        """Package the stressmark as a runnable benchmark profile."""
        return BenchmarkProfile(
            name="avf-stressmark",
            instructions=instructions,
            phases=((1.0, self.characteristics),),
        )


_SCALAR_KNOBS = tuple(_BOUNDS) + ("l2_mpki", "l3_mpki")


def _build(chars: PhaseCharacteristics, values: dict) -> PhaseCharacteristics:
    """Construct a valid candidate from raw knob values.

    Clips every knob into its bounds and repairs the miss-rate
    ordering (l1d >= l2 >= l3) and the branch-count consistency before
    the (eagerly validating) dataclass is built.
    """
    repaired = dict(values)
    for key, (lo, hi) in _BOUNDS.items():
        repaired[key] = min(max(repaired[key], lo), hi)
    repaired["l2_mpki"] = min(max(repaired["l2_mpki"], 0.0),
                              repaired["l1d_mpki"])
    repaired["l3_mpki"] = min(max(repaired["l3_mpki"], 0.0),
                              repaired["l2_mpki"])
    branches_pki = 1000.0 * chars.mix.branch
    repaired["branch_mpki"] = min(repaired["branch_mpki"], branches_pki)
    return replace(chars, **repaired)


def _knob_values(chars: PhaseCharacteristics) -> dict:
    return {key: getattr(chars, key) for key in _SCALAR_KNOBS}


def _clamp(chars: PhaseCharacteristics) -> PhaseCharacteristics:
    """Repair a candidate into the valid characteristics region."""
    return _build(chars, _knob_values(chars))


def _perturb(
    chars: PhaseCharacteristics, rng: np.random.Generator, scale: float
) -> PhaseCharacteristics:
    """One random neighbour of a candidate."""
    values = _knob_values(chars)
    key = rng.choice(_SCALAR_KNOBS)
    if key in ("l2_mpki", "l3_mpki"):
        step = (1.0 + values[key]) * scale * rng.standard_normal()
    else:
        lo, hi = _BOUNDS[key]
        step = (hi - lo) * scale * rng.standard_normal()
    values[key] = values[key] + step
    return _build(chars, values)


def search_stressmark(
    *,
    core: CoreConfig | None = None,
    memory: MemoryConfig | None = None,
    iterations: int = 400,
    seed: int = 0,
    start: PhaseCharacteristics | None = None,
) -> StressmarkResult:
    """Hill-climb toward the AVF-maximizing phase characteristics.

    A simple stochastic hill climber with restarts-free acceptance:
    each iteration perturbs one knob; improvements are kept.  The
    instruction mix is held fixed (a low-NOP, load-heavy mix -- NOPs
    are un-ACE and loads create the long-residency state).
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    core = core if core is not None else big_core_config()
    memory = memory if memory is not None else MemoryConfig()
    rng = np.random.default_rng(seed)
    if start is None:
        start = PhaseCharacteristics(
            mix=InstructionMix(
                nop=0.0, int_alu=0.30, int_mul=0.0, load=0.40, store=0.14,
                branch=0.16,
            ),
            dep_distance_mean=6.0,
            branch_mpki=0.5,
            icache_mpki=0.1,
            l1d_mpki=25.0,
            l2_mpki=18.0,
            l3_mpki=12.0,
            cache_sensitivity=0.1,
            mlp=4.0,
            branch_depends_on_load_prob=0.0,
        )
    current = _clamp(start)

    def avf_of(chars: PhaseCharacteristics) -> float:
        analysis = analyze_phase(chars, core, memory, ISOLATED)
        return analysis.avf(core)

    best_avf = avf_of(current)
    evaluations = 1
    for i in range(iterations):
        scale = 0.25 * (1.0 - i / iterations) + 0.02
        candidate = _perturb(current, rng, scale)
        candidate_avf = avf_of(candidate)
        evaluations += 1
        if candidate_avf > best_avf:
            current, best_avf = candidate, candidate_avf
    return StressmarkResult(
        characteristics=current, avf=best_avf, evaluations=evaluations
    )
