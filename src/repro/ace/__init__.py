"""ACE-bit accounting: counter architectures, ABC stacks, hardware cost."""

from repro.ace.counters import AceCounterMode, SaturatingCounter, measured_abc
from repro.ace.faultinject import FaultInjectionResult, FaultInjector
from repro.ace.predictor import (
    AbcPredictor,
    PredictedReliabilityScheduler,
    train_predictor,
)
from repro.ace.hardware_cost import (
    ACCUMULATOR_BITS,
    SRAM_BITS_PER_ADDER,
    TIMESTAMP_BITS_BIG,
    TIMESTAMP_BITS_SMALL,
    CounterCost,
    baseline_big_core_cost,
    in_order_core_cost,
    rob_only_big_core_cost,
)
from repro.ace.stacks import abc_stack, rob_core_correlation, rob_fraction
from repro.ace.uncore import (
    L2_LIVE_FRACTION,
    L3_LIVE_FRACTION,
    UncoreAbc,
    format_sser_breakdown,
    l2_abc_rate,
    l3_abc_rate_estimate,
    run_sser_breakdown,
    uncore_abc,
)

__all__ = [
    "ACCUMULATOR_BITS",
    "AbcPredictor",
    "AceCounterMode",
    "CounterCost",
    "FaultInjectionResult",
    "FaultInjector",
    "L2_LIVE_FRACTION",
    "L3_LIVE_FRACTION",
    "PredictedReliabilityScheduler",
    "SRAM_BITS_PER_ADDER",
    "SaturatingCounter",
    "TIMESTAMP_BITS_BIG",
    "TIMESTAMP_BITS_SMALL",
    "UncoreAbc",
    "abc_stack",
    "baseline_big_core_cost",
    "format_sser_breakdown",
    "in_order_core_cost",
    "l2_abc_rate",
    "l3_abc_rate_estimate",
    "measured_abc",
    "run_sser_breakdown",
    "train_predictor",
    "rob_core_correlation",
    "rob_fraction",
    "uncore_abc",
]
