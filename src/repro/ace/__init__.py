"""ACE-bit accounting: counter architectures, ABC stacks, hardware cost."""

from repro.ace.counters import AceCounterMode, SaturatingCounter, measured_abc
from repro.ace.faultinject import FaultInjectionResult, FaultInjector
from repro.ace.predictor import (
    AbcPredictor,
    PredictedReliabilityScheduler,
    train_predictor,
)
from repro.ace.hardware_cost import (
    ACCUMULATOR_BITS,
    SRAM_BITS_PER_ADDER,
    TIMESTAMP_BITS_BIG,
    TIMESTAMP_BITS_SMALL,
    CounterCost,
    baseline_big_core_cost,
    in_order_core_cost,
    rob_only_big_core_cost,
)
from repro.ace.stacks import abc_stack, rob_core_correlation, rob_fraction

__all__ = [
    "ACCUMULATOR_BITS",
    "AbcPredictor",
    "AceCounterMode",
    "CounterCost",
    "FaultInjectionResult",
    "FaultInjector",
    "PredictedReliabilityScheduler",
    "SRAM_BITS_PER_ADDER",
    "SaturatingCounter",
    "TIMESTAMP_BITS_BIG",
    "TIMESTAMP_BITS_SMALL",
    "abc_stack",
    "baseline_big_core_cost",
    "in_order_core_cost",
    "measured_abc",
    "train_predictor",
    "rob_core_correlation",
    "rob_fraction",
]
