"""ACE-bit counter architectures: what the scheduler's hardware reads.

The core models report exact per-structure ACE bit-cycles; a counter
architecture determines *which subset the scheduler can observe*:

* :data:`AceCounterMode.FULL` -- the baseline implementation counts
  all profiled structures (904 bytes/core).
* :data:`AceCounterMode.ROB_ONLY` -- the area-optimized
  implementation counts only the ROB on big cores (296 bytes/core);
  the paper shows ROB ABC is an excellent proxy for core ABC
  (correlation 0.99, Figure 5).  Small cores always report their full
  (cheap, 67-byte) measurement.

Schedulers base their decisions on :func:`measured_abc`, so the
Figure 10 ROB-only ablation is a one-argument change.
"""

from __future__ import annotations

import enum

from repro.config.structures import StructureKind
from repro.cores.base import QuantumResult


class AceCounterMode(enum.Enum):
    """Which counter implementation the scheduler reads."""

    FULL = "full"
    ROB_ONLY = "rob_only"


def measured_abc(
    result: QuantumResult, mode: AceCounterMode, out_of_order: bool
) -> float:
    """ACE bit-cycles the counter hardware reports for a quantum.

    The small in-order core's 67-byte counter measures the pipeline
    latches (fetch-to-writeback), queues and functional units but not
    the register file (Section 4.2), so register-file ACE state is
    excluded from its reading regardless of the mode.

    Args:
        result: exact accounting from the core model.
        mode: counter implementation.
        out_of_order: whether the measuring core is a big core (the
            ROB-only optimization only applies there).
    """
    if not out_of_order:
        return result.total_ace_bit_cycles - result.ace_bit_cycles.get(
            StructureKind.REGISTER_FILE, 0.0
        )
    if mode == AceCounterMode.FULL:
        return result.total_ace_bit_cycles
    return result.ace_bit_cycles.get(StructureKind.ROB, 0.0)


class SaturatingCounter:
    """A fixed-width saturating hardware counter.

    Models the paper's 12-bit per-ROB-entry timestamp counters and the
    32-bit per-structure accumulators: adding beyond the maximum
    clamps at the maximum (the hardware never wraps mid-quantum
    because the quantum is sized to fit, but the model enforces it).
    """

    def __init__(self, bits: int):
        if bits <= 0:
            raise ValueError("counter width must be positive")
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.value = 0

    def add(self, amount: int) -> None:
        if amount < 0:
            raise ValueError("counters only count up")
        self.value = min(self.value + amount, self.max_value)

    def set(self, value: int) -> None:
        if value < 0:
            raise ValueError("counter values are non-negative")
        self.value = min(value, self.max_value)

    def reset(self) -> None:
        self.value = 0

    @property
    def saturated(self) -> bool:
        return self.value == self.max_value
