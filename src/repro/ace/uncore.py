"""Uncore (L2/L3) ACE accounting and per-component SSER breakdowns.

Cho et al. ("Understanding Soft Errors in Uncore Components") show the
cache hierarchy contributes materially to system SER: a cache line
holding live (architecturally correct execution) data is vulnerable
for as long as it sits in the array.  The core-side ACE machinery in
this package integrates pipeline/ROB state only; this module adds
residency ACE terms for the uncore levels the simulator already
models, computed post hoc from :class:`~repro.sim.results.RunResult`
counters -- no new simulation state is required.

Model:

* **L2 (private, per core).**  While an application runs, its core's
  L2 holds a roughly constant live fraction of the array, so the
  app's L2 ABC is ``L2_LIVE_FRACTION * l2_bits * on_core_time``.
* **L3 (shared).**  The array is live for the whole run; each
  application is charged the share of the array proportional to its
  share of L3 traffic (apps that stream through the L3 own more of
  it).  Shares sum to at most 1, so total charged L3 ABC never
  exceeds the array's residency ABC.

The live fractions are occupancy-weighted AVF-style constants in the
range fault-injection studies report for caches with ECC disabled on
clean lines; the absolute values scale the uncore terms linearly and
cancel out of scheduler comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config.machines import MemoryConfig
from repro.metrics.reliability import (
    DEFAULT_IFR,
    SserBreakdown,
    sser_breakdown,
)

if TYPE_CHECKING:  # imported lazily to keep repro.ace import-light
    from repro.sim.results import RunResult

#: Fraction of the private L2 array holding ACE (live) data while the
#: owning application executes.
L2_LIVE_FRACTION = 0.35

#: Fraction of the shared L3 array holding ACE data, split across
#: applications by their L3 traffic shares.
L3_LIVE_FRACTION = 0.15

#: Saturation constant for the scheduler-side L3 share estimate:
#: accesses per second at which an application is estimated to own
#: half the live L3 state it could.
L3_SHARE_SATURATION_APS = 1.0e6


def l2_abc_rate(memory: MemoryConfig) -> float:
    """ACE bits per second of on-core time charged for the private L2."""
    return L2_LIVE_FRACTION * 8.0 * memory.l2.size_bytes


def l3_abc_rate_estimate(
    memory: MemoryConfig, l3_accesses_per_second: float
) -> float:
    """Scheduler-side estimate of an app's L3 ACE bits per second.

    The true L3 charge depends on every co-runner's traffic (see
    :func:`uncore_abc`), which a scheduler weighing one candidate move
    cannot know.  This estimate saturates the app's own access rate
    instead: ``rate / (rate + L3_SHARE_SATURATION_APS)`` of the live
    array.  It is monotone in the app's traffic and bounded by the
    array size, which is all the greedy search needs.
    """
    aps = max(l3_accesses_per_second, 0.0)
    if aps == 0.0:
        return 0.0
    share = aps / (aps + L3_SHARE_SATURATION_APS)
    return L3_LIVE_FRACTION * 8.0 * memory.l3.size_bytes * share


@dataclass(frozen=True)
class UncoreAbc:
    """Uncore ACE-bit counts charged to one application (bit-seconds)."""

    name: str
    l2_abc_seconds: float
    l3_abc_seconds: float

    @property
    def total_abc_seconds(self) -> float:
        return self.l2_abc_seconds + self.l3_abc_seconds


def uncore_abc(result: RunResult, memory: MemoryConfig) -> list[UncoreAbc]:
    """Per-application uncore ABC for a completed run.

    L2 charges scale with each app's on-core time; the shared L3's
    residency ABC over the run duration is split by L3 traffic shares
    (zero traffic anywhere means nobody is charged for the L3).
    """
    l2_rate = l2_abc_rate(memory)
    l3_bits = L3_LIVE_FRACTION * 8.0 * memory.l3.size_bytes
    total_l3_accesses = sum(app.l3_accesses for app in result.apps)
    records = []
    for app in result.apps:
        on_core = app.time_big_seconds + app.time_small_seconds
        share = (
            app.l3_accesses / total_l3_accesses
            if total_l3_accesses > 0
            else 0.0
        )
        records.append(
            UncoreAbc(
                name=app.name,
                l2_abc_seconds=l2_rate * on_core,
                l3_abc_seconds=l3_bits * result.duration_seconds * share,
            )
        )
    return records


def run_sser_breakdown(
    result: RunResult,
    memory: MemoryConfig,
    ifr: float = DEFAULT_IFR,
) -> SserBreakdown:
    """Per-component SSER of a run: core + L2 + L3 (Equation 3 per part).

    Every component ABC is weighted by the same per-application
    isolated reference time as the core term, so the components sum
    to a consistent uncore-extended chip SSER.
    """
    uncore = uncore_abc(result, memory)
    return sser_breakdown(
        core_abcs=[app.abc_seconds for app in result.apps],
        l2_abcs=[u.l2_abc_seconds for u in uncore],
        l3_abcs=[u.l3_abc_seconds for u in uncore],
        reference_times_seconds=[
            app.reference_time_seconds for app in result.apps
        ],
        ifr=ifr,
    )


def format_sser_breakdown(breakdown: SserBreakdown) -> str:
    """Human-readable per-component SSER table (cf. PowerBreakdown)."""
    rows = [
        ("core", breakdown.core_sser),
        ("L2", breakdown.l2_sser),
        ("L3", breakdown.l3_sser),
        ("uncore", breakdown.uncore_sser),
        ("chip", breakdown.chip_sser),
    ]
    lines = ["component        SSER (errors/s)"]
    for label, value in rows:
        lines.append(f"{label:<12} {value:>18.6e}")
    return "\n".join(lines)


__all__ = [
    "L2_LIVE_FRACTION",
    "L3_LIVE_FRACTION",
    "L3_SHARE_SATURATION_APS",
    "UncoreAbc",
    "format_sser_breakdown",
    "l2_abc_rate",
    "l3_abc_rate_estimate",
    "run_sser_breakdown",
    "uncore_abc",
]
