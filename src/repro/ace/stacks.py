"""ABC stacks: per-structure breakdown of core occupancy (Figure 5).

An ABC stack decomposes a core's total ACE-bit count into its
microarchitectural structures.  The paper uses these stacks to justify
the area-optimized counter: ROB ABC contributes almost half of the
total and correlates with core ABC at 0.99 across the benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config.structures import StructureKind
from repro.cores.base import QuantumResult


def abc_stack(result: QuantumResult) -> dict[StructureKind, float]:
    """Per-structure fractions of total ACE bit-cycles (sum to 1)."""
    total = result.total_ace_bit_cycles
    if total <= 0:
        raise ValueError("result has no ACE bit-cycles")
    return {kind: value / total for kind, value in result.ace_bit_cycles.items()}


def rob_fraction(result: QuantumResult) -> float:
    """The ROB's share of the core's total ACE bit-cycles."""
    return abc_stack(result).get(StructureKind.ROB, 0.0)


def rob_core_correlation(results: Sequence[QuantumResult]) -> float:
    """Pearson correlation of ROB ABC with total core ABC.

    Computed across a set of workloads (one result per workload); the
    paper reports 0.99 for the big core over SPEC CPU2006.
    """
    if len(results) < 2:
        raise ValueError("need at least two workloads to correlate")
    rob = np.array(
        [r.ace_bit_cycles.get(StructureKind.ROB, 0.0) for r in results]
    )
    core = np.array([r.total_ace_bit_cycles for r in results])
    if np.allclose(rob.std(), 0) or np.allclose(core.std(), 0):
        raise ValueError("degenerate inputs: zero variance")
    return float(np.corrcoef(rob, core)[0, 1])
