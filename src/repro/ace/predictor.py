"""ABC prediction from ordinary performance counters.

The paper's counters cost 296 bytes per core.  The related work
(Walcott et al., ISCA 2007; Duan et al., HPCA 2009 — references [29]
and [14]) predicts AVF from existing performance counters instead:
zero additional hardware at the cost of prediction error.  This module
reproduces that alternative: a per-core-type linear regression from
``(IPC, L3 accesses/kinstr, DRAM accesses/kinstr, branch
mispredictions/kinstr)`` to ACE bits per cycle, trained on the
synthetic suite via the mechanistic model, plus
a scheduler variant that runs Algorithm 1 on predicted instead of
measured ABC (`PredictedReliabilityScheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.cores import CoreConfig, big_core_config, small_core_config
from repro.config.machines import BIG, MemoryConfig
from repro.cores.base import ISOLATED, MemoryEnvironment
from repro.cores.mechanistic import analyze_phase
from repro.sched.reliability import ReliabilityScheduler

#: Feature vector: (1, IPC, L3 accesses per kinstr, DRAM accesses per
#: kinstr, branch mispredictions per kinstr, DRAM x IPC and branch x
#: IPC interactions).
NUM_FEATURES = 7


def _features(
    ipc: float, l3_apki: float, dram_apki: float, branch_mpki: float
) -> np.ndarray:
    return np.array([
        1.0, ipc, l3_apki, dram_apki, branch_mpki,
        dram_apki * ipc, branch_mpki * ipc,
    ])


@dataclass(frozen=True)
class AbcPredictor:
    """Per-core-type linear model: perf counters -> ACE bits/cycle."""

    coefficients: dict[str, np.ndarray]
    training_r2: dict[str, float]

    def predict_abc_per_cycle(
        self,
        core_type: str,
        ipc: float,
        l3_apki: float,
        dram_apki: float,
        branch_mpki: float,
    ) -> float:
        coeffs = self.coefficients[core_type]
        value = float(
            coeffs @ _features(ipc, l3_apki, dram_apki, branch_mpki)
        )
        return max(value, 0.0)


def train_predictor(
    *,
    big: CoreConfig | None = None,
    small: CoreConfig | None = None,
    memory: MemoryConfig | None = None,
    environments: tuple[MemoryEnvironment, ...] = (
        ISOLATED,
        MemoryEnvironment(l3_share_fraction=0.25,
                          dram_latency_multiplier=1.5),
    ),
) -> AbcPredictor:
    """Fit the regression on the synthetic suite's phases.

    Every phase of every benchmark, on each core type, under each
    training environment, contributes one sample of
    (features -> ACE bits/cycle) from the mechanistic model -- the
    stand-in for the offline profiling run the related work trains on.
    """
    from repro.workloads.spec2006 import SUITE

    big = big if big is not None else big_core_config()
    small = small if small is not None else small_core_config()
    memory = memory if memory is not None else MemoryConfig()
    coefficients: dict[str, np.ndarray] = {}
    r2: dict[str, float] = {}
    for core_type, core in ((BIG, big), ("small", small)):
        rows = []
        targets = []
        for profile in SUITE.values():
            for _, chars in profile.phases:
                for env in environments:
                    analysis = analyze_phase(chars, core, memory, env)
                    rows.append(_features(
                        analysis.ipc,
                        1000.0 * analysis.l3_accesses_per_instruction,
                        1000.0 * analysis.dram_accesses_per_instruction,
                        chars.branch_mpki,
                    ))
                    targets.append(analysis.total_ace_bits_per_cycle)
        matrix = np.array(rows)
        target = np.array(targets)
        coeffs, *_ = np.linalg.lstsq(matrix, target, rcond=None)
        predicted = matrix @ coeffs
        residual = float(((target - predicted) ** 2).sum())
        total = float(((target - target.mean()) ** 2).sum())
        coefficients[core_type] = coeffs
        r2[core_type] = 1.0 - residual / total if total > 0 else 1.0
    return AbcPredictor(coefficients=coefficients, training_r2=r2)


class PredictedReliabilityScheduler(ReliabilityScheduler):
    """Algorithm 1 driven by predicted instead of measured ABC.

    The zero-hardware-cost alternative: wSER estimates come from the
    regression over the sample's performance counters; the ACE
    counters are never read.
    """

    def __init__(self, machine, num_apps, predictor: AbcPredictor, **kwargs):
        super().__init__(machine, num_apps, **kwargs)
        self.predictor = predictor

    def objective_value(self, app_index: int, core_type: str) -> float:
        sample = self.sample(app_index, core_type)
        reference = self.sample(app_index, BIG)
        assert sample is not None and reference is not None
        if sample.instructions_per_second <= 0:
            return 0.0
        frequency = self.machine.core_config_for_type(
            core_type
        ).frequency_hz
        ipc = sample.instructions_per_second / frequency
        abc_per_cycle = self.predictor.predict_abc_per_cycle(
            core_type, ipc, sample.l3_apki, sample.dram_apki,
            sample.branch_mpki,
        )
        abc_per_instruction = abc_per_cycle / max(ipc, 1e-12) / frequency
        return abc_per_instruction * reference.instructions_per_second
