"""Monte-Carlo fault injection: the alternative AVF methodology.

The paper's reliability numbers come from ACE-bit analysis (Mukherjee
et al. [16]); the alternative is statistical fault injection (Li et
al. [13]): flip a random bit of a random structure entry at a random
cycle and check whether the flip lands on architecturally relevant
state.  The fraction of injections that hit ACE state estimates the
AVF, and on a correct implementation it converges to the ACE-counting
AVF -- which is exactly what this module verifies.

Implementation: the trace-driven out-of-order model exposes
per-instruction pipeline timings (:class:`WindowTiming`).  Structure
entries are allocated round-robin (instruction ``i`` occupies ROB
entry ``i mod 128``, its k-th load occupies load-queue entry
``k mod 64``, ...), so whether entry ``e`` of a structure holds ACE
state at cycle ``c`` reduces to an interval lookup over the
instructions mapped to ``e``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from repro.config.cores import CoreConfig
from repro.cores.ooo import _ARCH_REG_LIVE_FRACTION, WindowTiming
from repro.isa.instruction import FP_WRITERS, INT_WRITERS, InstructionClass


@dataclass
class FaultInjectionResult:
    """Outcome of a fault-injection campaign.

    Attributes:
        trials: injections performed.
        ace_hits: injections that landed on ACE state.
        per_structure: ``{structure: (trials, hits)}``.
    """

    trials: int
    ace_hits: int
    per_structure: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def avf_estimate(self) -> float:
        """Estimated AVF: fraction of injections that were ACE."""
        if self.trials == 0:
            raise ValueError("no trials performed")
        return self.ace_hits / self.trials

    def structure_avf(self, kind: str) -> float:
        trials, hits = self.per_structure[kind]
        if trials == 0:
            raise ValueError(f"no trials hit {kind}")
        return hits / trials

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval of the estimate."""
        p = self.avf_estimate
        half = z * (p * (1 - p) / self.trials) ** 0.5
        return max(0.0, p - half), min(1.0, p + half)


class _EntryIntervals:
    """ACE intervals of one structure, indexed by entry."""

    def __init__(self, entries: int):
        self.entries = entries
        self._starts: list[list[float]] = [[] for _ in range(entries)]
        self._ends: list[list[float]] = [[] for _ in range(entries)]

    def add(self, slot: int, start: float, end: float) -> None:
        if end <= start:
            return
        entry = slot % self.entries
        self._starts[entry].append(start)
        self._ends[entry].append(end)

    def finalize(self) -> None:
        """Sort each entry's intervals by start time.

        Queue structures append in dispatch order (already sorted),
        but register-file intervals start at out-of-order *finish*
        times, so they must be sorted before binary search.
        """
        for entry in range(self.entries):
            if not self._starts[entry]:
                continue
            order = sorted(
                range(len(self._starts[entry])),
                key=self._starts[entry].__getitem__,
            )
            self._starts[entry] = [self._starts[entry][i] for i in order]
            self._ends[entry] = [self._ends[entry][i] for i in order]

    def ace_at(self, entry: int, cycle: float) -> bool:
        """Whether the entry holds ACE state at a cycle.

        Intervals per entry are (nearly) non-overlapping and sorted by
        start, so a binary search suffices.
        """
        starts = self._starts[entry]
        if not starts:
            return False
        index = bisect.bisect_right(starts, cycle) - 1
        return index >= 0 and cycle < self._ends[entry][index]


class FaultInjector:
    """Monte-Carlo fault injection over one executed window."""

    def __init__(self, core: CoreConfig, timing: WindowTiming):
        if not core.out_of_order or core.rob is None:
            raise ValueError("fault injection targets the big core")
        assert core.load_queue is not None
        self.core = core
        self.timing = timing
        self._build_intervals()

    def _build_intervals(self) -> None:
        core = self.core
        t = self.timing
        rob = _EntryIntervals(core.rob.entries)
        iq = _EntryIntervals(core.issue_queue.entries)
        lq = _EntryIntervals(core.load_queue.entries)
        sq = _EntryIntervals(core.store_queue.entries)
        loads = stores = 0
        # Physical destination registers allocated round-robin over
        # the non-architectural part of each register file: int and fp
        # registers form separate pools because their bit widths (and
        # hence their shares of injected faults) differ.
        int_phys = (
            core.register_file.int_registers
            - core.register_file.arch_int_registers
        )
        fp_phys = (
            core.register_file.fp_registers
            - core.register_file.arch_fp_registers
        )
        rf_int = _EntryIntervals(max(int_phys, 1))
        rf_fp = _EntryIntervals(max(fp_phys, 1))
        int_writers = fp_writers = 0
        for i in range(t.committed):
            cls = InstructionClass(t.classes[i])
            if cls == InstructionClass.NOP:
                continue
            rob.add(i, t.dispatch[i], t.commit[i])
            iq.add(i, t.dispatch[i], t.issue[i])
            if cls == InstructionClass.LOAD:
                lq.add(loads, t.dispatch[i], t.commit[i])
                loads += 1
            elif cls == InstructionClass.STORE:
                sq.add(stores, t.dispatch[i], t.commit[i])
                stores += 1
            if cls in INT_WRITERS:
                rf_int.add(int_writers, t.finish[i], t.commit[i])
                int_writers += 1
            elif cls in FP_WRITERS:
                rf_fp.add(fp_writers, t.finish[i], t.commit[i])
                fp_writers += 1
        self._intervals = {
            "rob": rob,
            "issue_queue": iq,
            "load_queue": lq,
            "store_queue": sq,
            "rf_int": rf_int,
            "rf_fp": rf_fp,
        }
        for intervals in self._intervals.values():
            intervals.finalize()

    def _structure_bits(self) -> dict[str, int]:
        core = self.core
        assert core.rob is not None and core.load_queue is not None
        rf = core.register_file
        return {
            "rob": core.rob.total_bits,
            "issue_queue": core.issue_queue.total_bits,
            "load_queue": core.load_queue.total_bits,
            "store_queue": core.store_queue.total_bits,
            "rf_int": (rf.int_registers - rf.arch_int_registers)
            * rf.int_bits,
            "rf_fp": (rf.fp_registers - rf.arch_fp_registers) * rf.fp_bits,
            "arch_registers": rf.arch_bits,
        }

    def inject(self, trials: int, seed: int = 0) -> FaultInjectionResult:
        """Run a campaign of random single-bit flips.

        Structures are sampled in proportion to their bit capacity;
        cycles uniformly over the window.  Architectural registers are
        modelled as ACE with the same live fraction the counting model
        uses (a register is ACE from write to last read).
        """
        if trials <= 0:
            raise ValueError("trials must be positive")
        rng = np.random.default_rng(seed)
        bits = self._structure_bits()
        kinds = list(bits)
        weights = np.array([bits[k] for k in kinds], dtype=float)
        weights /= weights.sum()
        duration = self.timing.elapsed_cycles
        per_structure = {k: [0, 0] for k in kinds}
        hits = 0
        choices = rng.choice(len(kinds), size=trials, p=weights)
        cycles = rng.uniform(0.0, duration, size=trials)
        for j in range(trials):
            kind = kinds[choices[j]]
            per_structure[kind][0] += 1
            if kind == "arch_registers":
                # A register is ACE from write to last read; sample
                # liveness at the counting model's live fraction.
                ace = bool(rng.random() < _ARCH_REG_LIVE_FRACTION)
            else:
                intervals = self._intervals[kind]
                entry = int(rng.integers(intervals.entries))
                ace = intervals.ace_at(entry, float(cycles[j]))
            if ace:
                hits += 1
                per_structure[kind][1] += 1
        return FaultInjectionResult(
            trials=trials,
            ace_hits=hits,
            per_structure={k: (v[0], v[1]) for k, v in per_structure.items()},
        )

    def counting_avf(self) -> float:
        """The ACE-counting AVF over the same structures and window.

        The reference value the Monte-Carlo estimate must converge to
        (functional units are excluded from injection because their
        occupancy is not entry-addressable in this model, so they are
        excluded here as well).
        """
        core = self.core
        assert core.rob is not None and core.load_queue is not None
        t = self.timing
        total_ace = 0.0
        per_entry_bits = {
            "rob": core.rob.bits_per_entry,
            "issue_queue": core.issue_queue.bits_per_entry,
            "load_queue": core.load_queue.bits_per_entry,
            "store_queue": core.store_queue.bits_per_entry,
        }
        for i in range(t.committed):
            cls = InstructionClass(t.classes[i])
            if cls == InstructionClass.NOP:
                continue
            rob_res = t.commit[i] - t.dispatch[i]
            total_ace += rob_res * per_entry_bits["rob"]
            total_ace += (
                (t.issue[i] - t.dispatch[i]) * per_entry_bits["issue_queue"]
            )
            if cls == InstructionClass.LOAD:
                total_ace += rob_res * per_entry_bits["load_queue"]
            elif cls == InstructionClass.STORE:
                total_ace += rob_res * per_entry_bits["store_queue"]
            if cls in INT_WRITERS:
                total_ace += (t.commit[i] - t.finish[i]) * 64
            elif cls in FP_WRITERS:
                total_ace += (t.commit[i] - t.finish[i]) * 128
        total_ace += (
            core.register_file.arch_bits
            * _ARCH_REG_LIVE_FRACTION
            * t.elapsed_cycles
        )
        capacity = sum(self._structure_bits().values())
        return total_ace / (capacity * t.elapsed_cycles)
