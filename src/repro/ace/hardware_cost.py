"""Hardware cost of the ACE-bit counter architecture (paper Section 4.2).

The paper proposes three counter implementations and costs them in
SRAM-bit equivalents (one 32-bit adder ~ 1,200 transistors ~ 200 SRAM
bits at 6 transistors per cell):

* **baseline big-core counters** -- two 12-bit timestamps (dispatch,
  issue) per ROB entry, one 32-bit accumulator per profiled structure
  (5 structures), and 5 adders per commit slot (4-wide commit):
  3,072 + 160 + 20 x 200 = 7,232 bit equivalents = **904 bytes**.
* **area-optimized (ROB-only)** -- one 12-bit dispatch timestamp per
  ROB entry, one 32-bit ROB accumulator, 4 adders:
  1,536 + 32 + 800 = 2,368 bit equivalents = **296 bytes**.
* **in-order core** -- 10 fetch-time counters (5 stages x 2
  instructions) of 10 bits, one 32-bit accumulator, 2 adders:
  132 + 400 = 532 bit equivalents = **67 bytes**.

These numbers are reproduced arithmetically from the core
configuration so changing the configuration (e.g. ROB size) updates
the cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config.cores import CoreConfig

#: Width of a per-ROB-entry timestamp counter (covers 4,096 cycles).
TIMESTAMP_BITS_BIG = 12
#: Width of a per-slot fetch-time counter on the in-order core.
TIMESTAMP_BITS_SMALL = 10
#: Width of a per-structure occupancy accumulator.
ACCUMULATOR_BITS = 32
#: SRAM-bit equivalent of one 32-bit adder (1,200 transistors / 6).
SRAM_BITS_PER_ADDER = 200
#: Structures profiled by the baseline big-core implementation.
BASELINE_PROFILED_STRUCTURES = 5


@dataclass(frozen=True)
class CounterCost:
    """Cost of one counter implementation.

    Attributes:
        storage_bits: bits of timestamp + accumulator storage.
        adders: number of 32-bit adders.
    """

    storage_bits: int
    adders: int

    @property
    def bit_equivalents(self) -> int:
        """Storage bits plus the SRAM-equivalent of the adders."""
        return self.storage_bits + self.adders * SRAM_BITS_PER_ADDER

    @property
    def bytes(self) -> int:
        """Bit equivalents rounded up to whole bytes."""
        return math.ceil(self.bit_equivalents / 8)


def baseline_big_core_cost(core: CoreConfig) -> CounterCost:
    """Cost of the full (all-structure) big-core counter architecture."""
    if not core.out_of_order or core.rob is None:
        raise ValueError("baseline counters target the out-of-order core")
    timestamps = 2 * TIMESTAMP_BITS_BIG * core.rob.entries
    accumulators = ACCUMULATOR_BITS * BASELINE_PROFILED_STRUCTURES
    adders = BASELINE_PROFILED_STRUCTURES * core.width
    return CounterCost(storage_bits=timestamps + accumulators, adders=adders)


def rob_only_big_core_cost(core: CoreConfig) -> CounterCost:
    """Cost of the area-optimized (ROB-only) counter architecture."""
    if not core.out_of_order or core.rob is None:
        raise ValueError("ROB-only counters target the out-of-order core")
    timestamps = TIMESTAMP_BITS_BIG * core.rob.entries
    return CounterCost(
        storage_bits=timestamps + ACCUMULATOR_BITS, adders=core.width
    )


def in_order_core_cost(core: CoreConfig) -> CounterCost:
    """Cost of the in-order core's fetch-to-writeback counters."""
    if core.out_of_order or core.pipeline_latches is None:
        raise ValueError("in-order counters target the in-order core")
    counters = TIMESTAMP_BITS_SMALL * core.pipeline_latches.entries
    return CounterCost(
        storage_bits=counters + ACCUMULATOR_BITS, adders=core.width
    )
