"""Environment-independent phase features for the batched analyzer.

The scalar :func:`repro.cores.mechanistic.analyze_big_phase` /
:func:`analyze_small_phase` recompute everything per call, but most of
their inputs depend only on ``(chars, core, memory)`` -- not on the
:class:`~repro.cores.base.MemoryEnvironment`.  This module hoists that
part into a :class:`PhaseFeatures` record of plain Python floats,
computed once per (phase characteristics, core config, memory config)
triple with *exactly* the scalar code's operation order, so the
environment-dependent tail (:mod:`repro.batch.analysis`) reproduces
the scalar results bit-for-bit.

Only the LLC miss rate (through ``l3_mpki_at_share``), the DRAM
latency multiplier, and everything downstream of the resulting CPI
vary with the environment; the CPI prefix
``base + resource + bpred + icache + l2`` is a left fold of
environment-independent components and is frozen here as ``cpi_prefix``
(``sum`` of a dict is the same left fold starting at ``0``, and
``0.0 + base == base`` exactly for the positive ``base``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.config.cores import CoreConfig
from repro.config.machines import MemoryConfig
from repro.cores.mechanistic import (
    _ARCH_REG_LIVE_FRACTION,
    _BACKEND_SLACK,
    _CORRECT_PATH_RUN_FACTOR,
    _ICACHE_EXTRA,
    _INORDER_ILP_EFFICIENCY,
    _L2_EXPOSED_BIG,
    _MEM_OCCUPANCY_FACTOR,
    _REFILL_OCCUPANCY,
    _WRONG_PATH_WINDOW_FRACTION,
    _fu_throughput_limit,
    _producer_latency,
    _register_bits_per_writer,
    _writer_fraction,
)
from repro.isa.instruction import InstructionClass

if TYPE_CHECKING:
    from repro.workloads.characteristics import PhaseCharacteristics


class PhaseFeatures:
    """Environment-independent scalars of one (phase, core, memory).

    All numeric attributes are plain Python floats computed in the
    scalar analyzers' exact association order; ``pools`` carries the
    functional-unit constants needed for the IPC-dependent FU term.
    """

    __slots__ = (
        "kind", "core", "memory", "chars",
        # miss-rate inputs
        "m1", "m2", "l3_mpki", "sens_headroom",
        "br", "ic", "p_bl", "mlp",
        # latency inputs
        "l2_lat", "l3_lat", "dram_base",
        # CPI stack
        "cpi_prefix", "comp_l2", "t_fe",
        # mix-derived
        "non_nop", "load", "store", "writer_frac", "reg_bits_per_writer",
        # big-core occupancy model
        "rob_size", "rob_bits", "iq_size", "iq_bits",
        "lq_size", "lq_bits", "sq_size", "sq_bits",
        "occ_base_fixed", "occ_base_const", "fe_events", "fill_rate",
        "refill_occ", "time_to_fill", "ramp_ttf", "occ_mem",
        "wp_mem", "run_cap", "run_cap_finite", "arch_add",
        # small-core occupancy model
        "latch_bits", "occ_flow", "occ_stall", "occ_fe_small",
        "iq_occ_flow", "iq_occ_fe", "iq_occ_stall", "store_drain_extra",
        # functional units: (frac, latency, max_in_flight, bits) + ALU extra
        "pools", "alu_count", "alu_bits", "extra_frac",
    )

    def __init__(
        self,
        chars: "PhaseCharacteristics",
        core: CoreConfig,
        memory: MemoryConfig,
    ) -> None:
        self.kind = "big" if core.out_of_order else "small"
        self.core = core
        self.memory = memory
        self.chars = chars

        width = float(core.width)
        self.m1 = chars.l1d_mpki / 1000.0
        self.m2 = chars.l2_mpki / 1000.0
        # l3_mpki_at_share(s) == l3_mpki + (headroom*sens) * (1 - s)
        self.l3_mpki = chars.l3_mpki
        headroom = max(chars.l2_mpki - chars.l3_mpki, 0.0)
        self.sens_headroom = headroom * chars.cache_sensitivity
        self.br = chars.branch_mpki / 1000.0
        self.ic = chars.icache_mpki / 1000.0
        self.p_bl = chars.branch_depends_on_load_prob
        self.mlp = chars.mlp if core.out_of_order else 1.0  # _SMALL_MLP
        self.l2_lat = float(memory.l2.latency_cycles)
        self.l3_lat = memory.l3.latency_cycles
        self.dram_base = memory.dram_latency_cycles(core.frequency_ghz)

        producer_lat = _producer_latency(chars)
        if core.out_of_order:
            ipc_dataflow = chars.dep_distance_mean / producer_lat
        else:
            ipc_dataflow = (
                _INORDER_ILP_EFFICIENCY * chars.dep_distance_mean / producer_lat
            )
        ipc_limit = min(width, ipc_dataflow, _fu_throughput_limit(core, chars))

        comp_base = 1.0 / width
        comp_resource = 1.0 / ipc_limit - 1.0 / width
        if core.out_of_order:
            drain = producer_lat + _BACKEND_SLACK
            comp_bpred = self.br * (
                core.frontend_depth + drain * (1.0 - self.p_bl)
            )
            self.comp_l2 = (self.m1 - self.m2) * self.l2_lat * _L2_EXPOSED_BIG
        else:
            comp_bpred = self.br * core.frontend_depth
            self.comp_l2 = (self.m1 - self.m2) * self.l2_lat
        comp_icache = self.ic * (self.l2_lat + _ICACHE_EXTRA)
        # Left fold of sum({"base", "resource", "bpred", "icache", "l2"}).
        self.cpi_prefix = (
            0.0 + comp_base + comp_resource + comp_bpred + comp_icache
            + self.comp_l2
        )
        self.t_fe = comp_bpred + comp_icache

        self.non_nop = 1.0 - chars.mix.nop
        self.load = chars.mix.load
        self.store = chars.mix.store
        self.writer_frac = _writer_fraction(chars)
        self.reg_bits_per_writer = _register_bits_per_writer(chars)
        self.arch_add = (
            float(core.register_file.arch_bits) * _ARCH_REG_LIVE_FRACTION
        )

        self.iq_size = float(core.issue_queue.entries)
        self.iq_bits = float(core.issue_queue.bits_per_entry)
        self.sq_size = float(core.store_queue.entries)
        self.sq_bits = float(core.store_queue.bits_per_entry)

        if core.out_of_order:
            assert core.rob is not None and core.load_queue is not None
            rob_size = float(core.rob.entries)
            self.rob_size = rob_size
            self.rob_bits = float(core.rob.bits_per_entry)
            self.lq_size = float(core.load_queue.entries)
            self.lq_bits = float(core.load_queue.bits_per_entry)
            self.refill_occ = min(rob_size, _REFILL_OCCUPANCY)
            self.fill_rate = max(0.0, width - ipc_limit)
            self.fe_events = self.br + self.ic
            if self.fill_rate <= 1e-12:
                self.occ_base_fixed = True
                self.occ_base_const = min(
                    rob_size, width * (producer_lat + _BACKEND_SLACK * 2)
                )
                self.time_to_fill = 1.0
                self.ramp_ttf = 0.0
            elif self.fe_events <= 1e-12:
                self.occ_base_fixed = True
                self.occ_base_const = rob_size
                self.time_to_fill = 1.0
                self.ramp_ttf = 0.0
            else:
                self.occ_base_fixed = False
                self.occ_base_const = 0.0
                self.time_to_fill = (rob_size - self.refill_occ) / self.fill_rate
                ramp_avg = (self.refill_occ + rob_size) / 2.0
                self.ramp_ttf = ramp_avg * self.time_to_fill
            self.occ_mem = rob_size * _MEM_OCCUPANCY_FACTOR
            self.wp_mem = self.p_bl * _WRONG_PATH_WINDOW_FRACTION
            if self.br > 0:
                self.run_cap = _CORRECT_PATH_RUN_FACTOR / self.br
                self.run_cap_finite = True
            else:
                self.run_cap = math.inf
                self.run_cap_finite = False
            self.latch_bits = 0.0
            self.occ_flow = 0.0
            self.occ_stall = 0.0
            self.occ_fe_small = 0.0
            self.iq_occ_flow = 0.0
            self.iq_occ_fe = 0.0
            self.iq_occ_stall = 0.0
            self.store_drain_extra = 0.0
        else:
            assert core.pipeline_latches is not None
            latches = core.pipeline_latches
            latch_slots = float(latches.entries)
            self.latch_bits = float(latches.bits_per_entry)
            self.occ_flow = min(latch_slots, ipc_limit * core.frontend_depth)
            self.occ_stall = latch_slots
            # _FE_OCCUPANCY_FACTOR
            self.occ_fe_small = self.occ_flow * 0.25
            self.iq_occ_flow = min(self.iq_size, ipc_limit)
            self.iq_occ_fe = 0.5
            self.iq_occ_stall = self.iq_size
            # "stall" SQ occupancy adds 2.0 * store * 10.0 to sq_base.
            self.store_drain_extra = 2.0 * chars.mix.store * 10.0
            self.rob_size = 0.0
            self.rob_bits = 0.0
            self.lq_size = 0.0
            self.lq_bits = 0.0
            self.occ_base_fixed = True
            self.occ_base_const = 0.0
            self.fe_events = 0.0
            self.fill_rate = 0.0
            self.refill_occ = 0.0
            self.time_to_fill = 1.0
            self.ramp_ttf = 0.0
            self.occ_mem = 0.0
            self.wp_mem = 0.0
            self.run_cap = math.inf
            self.run_cap_finite = False

        mix = chars.mix.as_dict()
        self.pools = tuple(
            (
                mix.get(pool.instruction_class, 0.0),
                pool.latency,
                float(pool.max_in_flight),
                pool.bits,
            )
            for pool in core.functional_units
        )
        alu = core.fu_pool(InstructionClass.INT_ALU)
        self.alu_count = float(alu.count)
        self.alu_bits = alu.bits
        self.extra_frac = chars.mix.load + chars.mix.store + chars.mix.branch


_FEATURE_CACHE: dict[tuple[int, int, int], PhaseFeatures] = {}


def extract_features(
    chars: "PhaseCharacteristics",
    core: CoreConfig,
    memory: MemoryConfig,
) -> PhaseFeatures:
    """Features for a phase, cached by object identity.

    Callers that want cache hits across runs should canonicalize the
    ``chars``/``core``/``memory`` objects first (the batched driver
    does, via its profile/machine registries).
    """
    key = (id(chars), id(core), id(memory))
    feat = _FEATURE_CACHE.get(key)
    if feat is None:
        feat = PhaseFeatures(chars, core, memory)
        _FEATURE_CACHE[key] = feat
    return feat
