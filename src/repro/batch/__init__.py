"""Cross-run batched simulation (`repro.batch`).

One struct-of-arrays :class:`~repro.batch.simstate.SimState` advances
an entire sweep -- every workload mix x machine x scheduler -- quantum
by quantum as numpy array ops, dispatching to batched variants of the
mechanistic phase analysis (:mod:`repro.batch.analysis`).  The scalar
engine (:mod:`repro.sim.multicore`) stays the reference
implementation: batched results are byte-identical to it (see
``docs/batching.md`` for the tolerance policy) and are differentially
fuzzed against it by ``repro check --batch-cases``.
"""

from repro.batch.analysis import (
    BatchPhaseAnalysis,
    STRUCTURE_COLUMNS,
    analyze_phase_batch,
)
from repro.batch.features import PhaseFeatures, extract_features
from repro.batch.simstate import SimState
from repro.batch.sweep import (
    BatchRunRequest,
    BatchedExecutionEngine,
    BatchedSweep,
    run_workload_batch,
    run_workloads_batched,
)

__all__ = [
    "BatchPhaseAnalysis",
    "BatchRunRequest",
    "BatchedExecutionEngine",
    "BatchedSweep",
    "PhaseFeatures",
    "STRUCTURE_COLUMNS",
    "SimState",
    "analyze_phase_batch",
    "extract_features",
    "run_workload_batch",
    "run_workloads_batched",
]
