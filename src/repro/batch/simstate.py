"""Struct-of-arrays state for cross-run batched simulation.

One :class:`SimState` holds the mutable accumulators of *every* run in
a batched sweep as flat numpy arrays: a few per-run arrays (quantum
index, virtual time, liveness) plus per-lane arrays, where a *lane* is
one (run, application) slot.  Lanes of run ``r`` occupy the contiguous
index range ``run_offset[r]:run_offset[r + 1]``, so per-run reductions
are cheap slices and the whole sweep advances with element-wise array
ops (see :class:`repro.batch.sweep.BatchedSweep`).

The fields mirror the scalar accumulators of
:class:`repro.sim.multicore.MulticoreSimulation._run` one-for-one
(``positions``, the :class:`~repro.sim.results.AppRunRecord` sums,
``last_core``, demand rates), in the same float64/int64 types the
scalar loop uses, which is what makes bit-identical results possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

#: ``last_core`` value meaning "never ran" (the scalar path's ``None``).
NEVER_RAN = -2


@dataclass
class SimState:
    """Flat per-run / per-lane accumulators of a batched sweep.

    Attributes:
        run_offset: ``(R + 1,)`` int64 -- lane range of each run.
        quantum: ``(R,)`` int64 -- quanta completed per run.
        now: ``(R,)`` float64 -- virtual time per run.
        active: ``(R,)`` bool -- run still has unfinished applications.
        positions: ``(L,)`` int64 -- dynamic-instruction position
            (monotonic; wraps modulo the profile length on restart).
        profile_instructions: ``(L,)`` int64 -- profile length per lane.
        instructions: ``(L,)`` int64 -- committed instructions.
        abc_seconds / occupancy_bit_seconds: ``(L,)`` float64 -- ACE
            and total-occupancy bit-seconds (ground truth).
        dram_accesses / l3_accesses: ``(L,)`` float64 -- traffic.
        time_big_seconds / time_small_seconds: ``(L,)`` float64.
        instructions_big / instructions_small: ``(L,)`` int64.
        migrations: ``(L,)`` int64.
        last_core: ``(L,)`` int64 -- previous core id, or
            :data:`NEVER_RAN`.  A parked segment does not update it,
            exactly like the scalar loop.
    """

    run_offset: np.ndarray
    quantum: np.ndarray
    now: np.ndarray
    active: np.ndarray
    positions: np.ndarray
    profile_instructions: np.ndarray
    instructions: np.ndarray
    abc_seconds: np.ndarray
    occupancy_bit_seconds: np.ndarray
    dram_accesses: np.ndarray
    l3_accesses: np.ndarray
    time_big_seconds: np.ndarray
    time_small_seconds: np.ndarray
    instructions_big: np.ndarray
    instructions_small: np.ndarray
    migrations: np.ndarray
    last_core: np.ndarray

    @property
    def num_runs(self) -> int:
        return len(self.quantum)

    @property
    def num_lanes(self) -> int:
        return len(self.positions)

    def lanes_of(self, run: int) -> tuple[int, int]:
        """Lane index range ``[lo, hi)`` of one run."""
        return int(self.run_offset[run]), int(self.run_offset[run + 1])

    @classmethod
    def allocate(cls, profile_instructions: Sequence[Sequence[int]]) -> "SimState":
        """Fresh state for runs with the given per-app profile lengths."""
        counts = [len(lengths) for lengths in profile_instructions]
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        lanes = int(offsets[-1])
        flat = [int(n) for lengths in profile_instructions for n in lengths]
        runs = len(counts)
        return cls(
            run_offset=offsets,
            quantum=np.zeros(runs, dtype=np.int64),
            now=np.zeros(runs, dtype=np.float64),
            active=np.ones(runs, dtype=bool),
            positions=np.zeros(lanes, dtype=np.int64),
            profile_instructions=np.array(flat, dtype=np.int64),
            instructions=np.zeros(lanes, dtype=np.int64),
            abc_seconds=np.zeros(lanes, dtype=np.float64),
            occupancy_bit_seconds=np.zeros(lanes, dtype=np.float64),
            dram_accesses=np.zeros(lanes, dtype=np.float64),
            l3_accesses=np.zeros(lanes, dtype=np.float64),
            time_big_seconds=np.zeros(lanes, dtype=np.float64),
            time_small_seconds=np.zeros(lanes, dtype=np.float64),
            instructions_big=np.zeros(lanes, dtype=np.int64),
            instructions_small=np.zeros(lanes, dtype=np.int64),
            migrations=np.zeros(lanes, dtype=np.int64),
            last_core=np.full(lanes, NEVER_RAN, dtype=np.int64),
        )

    def select(self, run_indices: Sequence[int]) -> "SimState":
        """A copy holding only the given runs (property-test helper).

        The returned state has its own compacted lane ranges; the
        split/concatenate equivalence tests compare it field-by-field
        against a state built from the same runs alone.
        """
        run_indices = list(run_indices)
        lane_idx: list[int] = []
        counts: list[int] = []
        for r in run_indices:
            lo, hi = self.lanes_of(r)
            lane_idx.extend(range(lo, hi))
            counts.append(hi - lo)
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        runs = np.array(run_indices, dtype=np.intp)
        lanes = np.array(lane_idx, dtype=np.intp)
        return SimState(
            run_offset=offsets,
            quantum=self.quantum[runs].copy(),
            now=self.now[runs].copy(),
            active=self.active[runs].copy(),
            positions=self.positions[lanes].copy(),
            profile_instructions=self.profile_instructions[lanes].copy(),
            instructions=self.instructions[lanes].copy(),
            abc_seconds=self.abc_seconds[lanes].copy(),
            occupancy_bit_seconds=self.occupancy_bit_seconds[lanes].copy(),
            dram_accesses=self.dram_accesses[lanes].copy(),
            l3_accesses=self.l3_accesses[lanes].copy(),
            time_big_seconds=self.time_big_seconds[lanes].copy(),
            time_small_seconds=self.time_small_seconds[lanes].copy(),
            instructions_big=self.instructions_big[lanes].copy(),
            instructions_small=self.instructions_small[lanes].copy(),
            migrations=self.migrations[lanes].copy(),
            last_core=self.last_core[lanes].copy(),
        )
