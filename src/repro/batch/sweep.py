"""Batched sweep driver: advance every run of a sweep together.

:class:`BatchedSweep` executes a batch of independent (machine x
workload mix x scheduler) runs quantum-by-quantum over one
struct-of-arrays :class:`~repro.batch.simstate.SimState`.  Each
scheduler quantum costs a handful of numpy array ops over all lanes
(run x application slots) executing that segment, instead of one
Python mechanistic-model call per application per phase chunk.

The scalar engine (:class:`repro.sim.multicore.MulticoreSimulation`)
stays the reference implementation; this driver replays its exact
float operation sequence per lane:

* the environment-independent part of each phase analysis is frozen
  once per (phase, core, memory) by :mod:`repro.batch.features`;
* the environment-dependent tail is evaluated by
  :func:`repro.batch.analysis.analyze_phase_batch` and memoized in a
  growable table keyed by exact (feature id, environment id) pairs --
  interference fixed points repeat bit-for-bit in steady state, so
  the table stops growing after a few quanta;
* scheduling, interference environments, and observations run through
  the *same* scalar classes per run (exact reuse, not a re-model).

Results are therefore byte-identical to the scalar engine for every
supported configuration (see ``docs/batching.md`` for the policy and
the unsupported corners: timelines, run-to-completion accounting,
fault injection).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ace.counters import AceCounterMode
from repro.batch.analysis import (
    BIG_KEY_COLUMNS,
    SMALL_KEY_COLUMNS,
    analyze_phase_batch,
)
from repro.batch.features import PhaseFeatures, extract_features
from repro.batch.simstate import NEVER_RAN, SimState
from repro.config.machines import BIG, SMALL, MachineConfig
from repro.cores.mechanistic import MechanisticCoreModel
from repro.memory.interference import ApplicationDemand, InterferenceModel
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.sched.base import PARKED, Observation, Scheduler
from repro.sim.experiment import make_scheduler
from repro.sim.isolated import ReferenceTimes
from repro.sim.multicore import DEFAULT_MAX_QUANTA
from repro.sim.results import AppRunRecord, RunResult
from repro.workloads.characteristics import BenchmarkProfile
from repro.workloads.mixes import WorkloadMix
from repro.workloads.spec2006 import benchmark

_ROB, _IQ, _LQ, _SQ, _RF, _FU, _PL = range(7)


@dataclass(frozen=True)
class BatchRunRequest:
    """One run of a batched sweep (the batched analogue of a RunSpec).

    Attributes:
        machine: the fully built machine configuration.
        benchmarks: benchmark names, one per application.
        scheduler: scheduler name (``repro.sim.experiment`` registry).
        instructions: optional per-benchmark instruction override.
        seed: scheduler seed.  Derived from the run's *content* (the
            spec), never from its batch position, so re-ordering or
            filtering a batch cannot change any run's result.
        counter_mode: ACE counter architecture the scheduler reads.
    """

    machine: MachineConfig
    benchmarks: tuple[str, ...]
    scheduler: str
    instructions: int | None = None
    seed: int = 0
    counter_mode: AceCounterMode = AceCounterMode.FULL


class _AnalysisTable:
    """Growable columnar memo of batched phase analyses."""

    def __init__(self, capacity: int = 1024):
        self.n = 0
        self.cpi = np.empty(capacity, dtype=np.float64)
        self.dram_pi = np.empty(capacity, dtype=np.float64)
        self.l3_pi = np.empty(capacity, dtype=np.float64)
        self.ace = np.empty((capacity, 7), dtype=np.float64)
        self.occ = np.empty((capacity, 7), dtype=np.float64)

    def _reserve(self, extra: int) -> None:
        need = self.n + extra
        capacity = len(self.cpi)
        if need <= capacity:
            return
        while capacity < need:
            capacity *= 2
        for name in ("cpi", "dram_pi", "l3_pi"):
            new = np.empty(capacity, dtype=np.float64)
            new[: self.n] = getattr(self, name)[: self.n]
            setattr(self, name, new)
        for name in ("ace", "occ"):
            new = np.empty((capacity, 7), dtype=np.float64)
            new[: self.n] = getattr(self, name)[: self.n]
            setattr(self, name, new)

    def append(self, batch) -> range:
        """Append a BatchPhaseAnalysis; returns the new row indices."""
        k = len(batch.cpi)
        self._reserve(k)
        lo = self.n
        self.cpi[lo : lo + k] = batch.cpi
        self.dram_pi[lo : lo + k] = batch.dram_pi
        self.l3_pi[lo : lo + k] = batch.l3_pi
        self.ace[lo : lo + k] = batch.ace
        self.occ[lo : lo + k] = batch.occupancy
        self.n += k
        return range(lo, lo + k)


class _Run:
    """Python-level (non-array) state of one run in the batch."""

    __slots__ = (
        "request", "machine", "profiles", "scheduler", "ref_times",
        "counter_full", "interference", "demands",
        "prow_big", "prow_small", "freq_big", "freq_small",
    )

    request: BatchRunRequest
    machine: MachineConfig
    profiles: list[BenchmarkProfile]
    scheduler: Scheduler
    ref_times: list[ReferenceTimes]
    counter_full: bool
    interference: InterferenceModel
    demands: list[ApplicationDemand]
    prow_big: list[int]
    prow_small: list[int]
    freq_big: float
    freq_small: float


class BatchedSweep:
    """Advance a batch of runs together; results in request order."""

    def __init__(
        self,
        requests: Sequence[BatchRunRequest],
        *,
        max_quanta: int = DEFAULT_MAX_QUANTA,
    ):
        self.requests = list(requests)
        self.max_quanta = max_quanta
        self._results: list[RunResult] | None = None
        # Canonicalization registries: equal machines / (name, length)
        # profiles share one object, so feature extraction and the
        # analysis memo hit across runs.
        self._machines: dict[MachineConfig, MachineConfig] = {}
        self._profiles: dict[tuple[str, int | None], BenchmarkProfile] = {}
        self._big_models: dict[int, MechanisticCoreModel] = {}
        self._ref_cache: dict[tuple[int, int], ReferenceTimes] = {}
        # Feature / environment / analysis memo state.
        self._features: list[PhaseFeatures] = []
        self._fid_of: dict[int, int] = {}
        self._envs: list[tuple[float, float]] = []
        self._eid_of: dict[tuple[float, float], int] = {}
        self._table = _AnalysisTable()
        self._row_of: dict[int, int] = {}
        # Program table rows, padded to arrays after construction.
        self._prog_rows: dict[tuple[int, int, int], int] = {}
        self._row_bnd: list[list[int]] = []
        self._row_fid: list[list[int]] = []
        self._row_brr: list[list[float]] = []

        self._runs = [self._build_run(req) for req in self.requests]
        self._freeze_program_table()
        self.state = SimState.allocate(
            [[p.instructions for p in run.profiles] for run in self._runs]
        )

    # -- construction -------------------------------------------------

    def _canon_machine(self, machine: MachineConfig) -> MachineConfig:
        try:
            return self._machines.setdefault(machine, machine)
        except TypeError:  # unhashable custom config: no sharing
            return machine

    def _profile(self, name: str, instructions: int | None) -> BenchmarkProfile:
        key = (name, instructions)
        profile = self._profiles.get(key)
        if profile is None:
            profile = benchmark(name)
            if instructions is not None:
                profile = profile.scaled(instructions)
            self._profiles[key] = profile
        return profile

    def _big_model(self, machine: MachineConfig) -> MechanisticCoreModel:
        model = self._big_models.get(id(machine))
        if model is None:
            model = MechanisticCoreModel(machine.big, machine.memory)
            self._big_models[id(machine)] = model
        return model

    def _reference_times(
        self, machine: MachineConfig, profile: BenchmarkProfile
    ) -> ReferenceTimes:
        key = (id(machine), id(profile))
        ref = self._ref_cache.get(key)
        if ref is None:
            ref = ReferenceTimes.from_models(profile, self._big_model(machine))
            self._ref_cache[key] = ref
        return ref

    def _fid(self, feat: PhaseFeatures) -> int:
        fid = self._fid_of.get(id(feat))
        if fid is None:
            fid = len(self._features)
            self._features.append(feat)
            self._fid_of[id(feat)] = fid
        return fid

    def _prog_row(self, profile: BenchmarkProfile, core, memory) -> int:
        key = (id(profile), id(core), id(memory))
        row = self._prog_rows.get(key)
        if row is None:
            fids = []
            brr = []
            for _, chars in profile.phases:
                fids.append(self._fid(extract_features(chars, core, memory)))
                brr.append(chars.branch_mpki / 1000.0)
            row = len(self._row_bnd)
            self._row_bnd.append(profile.phase_boundaries())
            self._row_fid.append(fids)
            self._row_brr.append(brr)
            self._prog_rows[key] = row
        return row

    def _build_run(self, request: BatchRunRequest) -> _Run:
        machine = self._canon_machine(request.machine)
        profiles = [
            self._profile(name, request.instructions)
            for name in request.benchmarks
        ]
        if len(profiles) < machine.num_cores:
            raise ValueError(
                f"{machine.name} needs at least {machine.num_cores} "
                f"applications; got {len(profiles)}"
            )
        run = _Run()
        run.request = request
        run.machine = machine
        run.profiles = profiles
        run.scheduler = make_scheduler(
            request.scheduler, machine, len(profiles), request.seed
        )
        run.ref_times = [self._reference_times(machine, p) for p in profiles]
        run.counter_full = request.counter_mode == AceCounterMode.FULL
        run.interference = InterferenceModel(machine.memory)
        run.demands = [ApplicationDemand(0.0, 0.0)] * len(profiles)
        run.prow_big = [
            self._prog_row(p, machine.big, machine.memory) for p in profiles
        ]
        run.prow_small = [
            self._prog_row(p, machine.small, machine.memory) for p in profiles
        ]
        run.freq_big = machine.big.frequency_hz
        run.freq_small = machine.small.frequency_hz
        return run

    def _freeze_program_table(self) -> None:
        rows = len(self._row_bnd)
        max_phases = max((len(f) for f in self._row_fid), default=1)
        self._NTOT = np.array(
            [b[-1] for b in self._row_bnd] or [1], dtype=np.int64
        )
        self._BND = np.empty((rows or 1, max_phases + 1), dtype=np.int64)
        self._FID = np.zeros((rows or 1, max_phases), dtype=np.int64)
        self._BRR = np.zeros((rows or 1, max_phases), dtype=np.float64)
        for r in range(rows):
            bnd = self._row_bnd[r]
            # Pad with the total length: a padded boundary can never be
            # <= pos_mod (pos_mod < ntot), so it never shifts the
            # phase-index count below.
            self._BND[r, : len(bnd)] = bnd
            self._BND[r, len(bnd) :] = bnd[-1]
            self._FID[r, : len(self._row_fid[r])] = self._row_fid[r]
            self._BRR[r, : len(self._row_brr[r])] = self._row_brr[r]
        self._BND1 = self._BND[:, 1:].copy()

    # -- analysis memo ------------------------------------------------

    def _env_id(self, share: float, mult: float) -> int:
        key = (share, mult)
        eid = self._eid_of.get(key)
        if eid is None:
            eid = len(self._envs)
            self._envs.append(key)
            self._eid_of[key] = eid
        return eid

    def _rows_for(self, fids: np.ndarray, eids: np.ndarray) -> np.ndarray:
        """Analysis-table rows for (feature, environment) pairs.

        Keys are exact integer pairs; misses are evaluated in one
        :func:`analyze_phase_batch` call and appended to the table.
        """
        keys = (fids.astype(np.int64) << 32) | eids
        uk = np.unique(keys)
        rowmap = np.empty(len(uk), dtype=np.int64)
        missing: list[int] = []
        for j, key in enumerate(uk.tolist()):
            row = self._row_of.get(key)
            if row is None:
                missing.append(j)
            else:
                rowmap[j] = row
        if missing:
            feats = []
            shares = []
            mults = []
            for j in missing:
                key = int(uk[j])
                feats.append(self._features[key >> 32])
                share, mult = self._envs[key & 0xFFFFFFFF]
                shares.append(share)
                mults.append(mult)
            batch = analyze_phase_batch(feats, shares, mults)
            for j, row in zip(missing, self._table.append(batch)):
                self._row_of[int(uk[j])] = row
                rowmap[j] = row
        return rowmap[np.searchsorted(uk, keys)]

    # -- execution ----------------------------------------------------

    def _advance(
        self,
        prow: np.ndarray,
        eid: np.ndarray,
        pos: np.ndarray,
        budget: np.ndarray,
    ) -> tuple[np.ndarray, ...]:
        """Vectorized phase-chunk loop over the executing lanes.

        Replays :meth:`MechanisticCoreModel.run_cycles` per lane: each
        round commits one homogeneous phase chunk per still-running
        lane, with the scalar loop's exact rounding and accumulation
        order, so every per-lane total is bit-identical.
        """
        lanes = len(pos)
        rem = budget
        instr = np.zeros(lanes, dtype=np.int64)
        ace7 = np.zeros((lanes, 7), dtype=np.float64)
        occ7 = np.zeros((lanes, 7), dtype=np.float64)
        dram = np.zeros(lanes, dtype=np.float64)
        l3 = np.zeros(lanes, dtype=np.float64)
        br = np.zeros(lanes, dtype=np.float64)
        act = rem > 1e-9
        while True:
            idx = np.nonzero(act)[0]
            if idx.size == 0:
                break
            pr = prow[idx]
            pos_mod = pos[idx] % self._NTOT[pr]
            ph = (pos_mod[:, None] >= self._BND1[pr]).sum(axis=1)
            rows = self._rows_for(self._FID[pr, ph], eid[idx])
            cpi = self._table.cpi[rows]
            to_phase_end = self._BND[pr, ph + 1] - pos_mod
            chunk = np.minimum(rem[idx], to_phase_end * cpi)
            # int(round(x)) == np.rint(x): both round half to even.
            count = np.rint(chunk / cpi)
            running = count > 0.0
            # Budget too small for one instruction: idle out the rest.
            stopped = idx[~running]
            rem[stopped] = 0.0
            act[stopped] = False
            go = np.nonzero(running)[0]
            if go.size:
                gi = idx[go]
                n_i = count[go].astype(np.int64)
                gcpi = cpi[go]
                gchunk = n_i * gcpi
                grows = rows[go]
                ace7[gi] += self._table.ace[grows] * gchunk[:, None]
                occ7[gi] += self._table.occ[grows] * gchunk[:, None]
                dram[gi] += self._table.dram_pi[grows] * n_i
                l3[gi] += self._table.l3_pi[grows] * n_i
                br[gi] += self._BRR[pr[go], ph[go]] * n_i
                instr[gi] += n_i
                pos[gi] += n_i
                rem[gi] = rem[gi] - gchunk
                act[gi] = rem[gi] > 1e-9
        return pos, instr, ace7, occ7, dram, l3, br

    @staticmethod
    def _fold(arr: np.ndarray, columns: tuple[int, ...]) -> np.ndarray:
        """Left-fold of ``sum(dict.values())`` in the scalar key order."""
        total = 0.0 + arr[:, columns[0]]
        for c in columns[1:]:
            total = total + arr[:, c]
        return total

    def _run_segment(self, seg: list, q_instr: np.ndarray) -> None:
        """Execute one segment index across the given (run, plan) pairs."""
        st = self.state
        exec_lane: list[int] = []
        exec_budget: list[float] = []
        exec_prow: list[int] = []
        exec_eid: list[int] = []
        exec_big: list[bool] = []
        exec_full: list[bool] = []
        exec_freq: list[float] = []
        exec_dur: list[float] = []
        exec_overhead: list[float] = []
        exec_core: list[int] = []
        exec_migrated: list[bool] = []
        per_run: list[tuple] = []
        for r, plan in seg:
            run = self._runs[r]
            plan.assignment.validate(run.machine)
            duration = plan.fraction * run.machine.quantum_seconds
            envs = run.interference.environments(run.demands)
            lo, hi = st.lanes_of(r)
            jmap: dict[int, int] = {}
            for i in range(hi - lo):
                core = plan.assignment.core_of[i]
                if core == PARKED:
                    continue
                lane = lo + i
                last = int(st.last_core[lane])
                migrated = last != NEVER_RAN and last != core
                overhead = (
                    min(run.machine.migration_overhead_seconds, duration)
                    if migrated
                    else 0.0
                )
                big = run.machine.core_type(core) == BIG
                freq = run.freq_big if big else run.freq_small
                jmap[i] = len(exec_lane)
                exec_lane.append(lane)
                exec_budget.append((duration - overhead) * freq)
                exec_prow.append(run.prow_big[i] if big else run.prow_small[i])
                env = envs[i]
                exec_eid.append(
                    self._env_id(
                        env.l3_share_fraction, env.dram_latency_multiplier
                    )
                )
                exec_big.append(big)
                exec_full.append(run.counter_full)
                exec_freq.append(freq)
                exec_dur.append(duration)
                exec_overhead.append(overhead)
                exec_core.append(core)
                exec_migrated.append(migrated)
            per_run.append((r, run, plan, duration, jmap))

        if exec_lane:
            lanes = np.array(exec_lane, dtype=np.intp)
            pos, instr, ace7, occ7, dram, l3, br = self._advance(
                np.array(exec_prow, dtype=np.intp),
                np.array(exec_eid, dtype=np.int64),
                st.positions[lanes].copy(),
                np.array(exec_budget, dtype=np.float64),
            )
            freq = np.array(exec_freq, dtype=np.float64)
            isbig = np.array(exec_big, dtype=bool)
            full = np.array(exec_full, dtype=bool)
            dur = np.array(exec_dur, dtype=np.float64)
            ace_big = self._fold(ace7, BIG_KEY_COLUMNS)
            ace_small = self._fold(ace7, SMALL_KEY_COLUMNS)
            ace_total = np.where(isbig, ace_big, ace_small)
            occ_total = np.where(
                isbig,
                self._fold(occ7, BIG_KEY_COLUMNS),
                self._fold(occ7, SMALL_KEY_COLUMNS),
            )
            # repro.ace.counters.measured_abc per lane: small cores
            # report total minus the register file; big cores report
            # the full total (FULL) or the ROB column (ROB_ONLY).
            measured = np.where(
                isbig,
                np.where(full, ace_big, ace7[:, _ROB]),
                ace_small - ace7[:, _RF],
            )
            measured_sec = measured / freq
            st.positions[lanes] = pos
            st.instructions[lanes] += instr
            st.abc_seconds[lanes] += ace_total / freq
            st.occupancy_bit_seconds[lanes] += occ_total / freq
            st.dram_accesses[lanes] += dram
            st.l3_accesses[lanes] += l3
            st.time_big_seconds[lanes[isbig]] += dur[isbig]
            st.instructions_big[lanes[isbig]] += instr[isbig]
            small = ~isbig
            st.time_small_seconds[lanes[small]] += dur[small]
            st.instructions_small[lanes[small]] += instr[small]
            st.migrations[lanes] += np.array(exec_migrated, dtype=np.int64)
            st.last_core[lanes] = np.array(exec_core, dtype=np.int64)
            q_instr[lanes] += instr

        for r, run, plan, duration, jmap in per_run:
            lo, hi = st.lanes_of(r)
            observations = []
            new_demands = list(run.demands)
            for i in range(hi - lo):
                core = plan.assignment.core_of[i]
                if core == PARKED:
                    observations.append(
                        Observation(i, core, "parked", 0.0, 0, 0.0)
                    )
                    new_demands[i] = ApplicationDemand(0.0, 0.0)
                    continue
                j = jmap[i]
                l3_acc = float(l3[j])
                dram_acc = float(dram[j])
                observations.append(
                    Observation(
                        app_index=i,
                        core_id=core,
                        core_type=BIG if exec_big[j] else SMALL,
                        duration_seconds=duration - exec_overhead[j],
                        instructions=int(instr[j]),
                        measured_abc_seconds=float(measured_sec[j]),
                        l3_accesses=l3_acc,
                        dram_accesses=dram_acc,
                        branch_mispredictions=float(br[j]),
                    )
                )
                new_demands[i] = ApplicationDemand(
                    l3_accesses_per_second=l3_acc / duration,
                    dram_accesses_per_second=dram_acc / duration,
                )
            run.demands = new_demands
            run.scheduler.observe(plan, observations)
            st.now[r] += duration

    def step(self) -> bool:
        """Advance every active run by one quantum; False when done."""
        st = self.state
        run_idxs = [r for r in range(st.num_runs) if st.active[r]]
        if not run_idxs:
            return False
        plans_by_run: dict[int, list] = {}
        for r in run_idxs:
            if st.quantum[r] >= self.max_quanta:
                raise RuntimeError(
                    f"simulation exceeded {self.max_quanta} quanta"
                )
            with obs_tracing.span("sched.plan_quantum"):
                plans = self._runs[r].scheduler.plan_quantum(
                    int(st.quantum[r])
                )
            total_fraction = sum(p.fraction for p in plans)
            if not math.isclose(total_fraction, 1.0, abs_tol=1e-9):
                raise ValueError(
                    f"quantum segments cover {total_fraction}, expected 1.0"
                )
            plans_by_run[r] = plans
        q_instr = np.zeros(st.num_lanes, dtype=np.int64)
        max_segments = max(len(p) for p in plans_by_run.values())
        for s in range(max_segments):
            seg = [
                (r, plans_by_run[r][s])
                for r in run_idxs
                if s < len(plans_by_run[r])
            ]
            self._run_segment(seg, q_instr)
        reg = obs_metrics.ACTIVE
        for r in run_idxs:
            lo, hi = st.lanes_of(r)
            if reg is not None:
                reg.histogram("sim.quantum_instructions").observe(
                    float(int(q_instr[lo:hi].sum()))
                )
            st.quantum[r] += 1
            if bool(
                np.all(
                    st.positions[lo:hi] >= st.profile_instructions[lo:hi]
                )
            ):
                st.active[r] = False
        return True

    def run(self) -> list[RunResult]:
        """Run every request to completion; results in request order."""
        if self._results is None:
            with obs_tracing.span("batch.sweep"):
                while self.step():
                    pass
            self._results = [
                self._finalize(r) for r in range(self.state.num_runs)
            ]
        return self._results

    def _finalize(self, r: int) -> RunResult:
        st = self.state
        run = self._runs[r]
        lo, hi = st.lanes_of(r)
        now = float(st.now[r])
        records = []
        for i, profile in enumerate(run.profiles):
            lane = lo + i
            position = int(st.positions[lane])
            records.append(
                AppRunRecord(
                    name=profile.name,
                    instructions=int(st.instructions[lane]),
                    time_seconds=now,
                    abc_seconds=float(st.abc_seconds[lane]),
                    occupancy_bit_seconds=float(
                        st.occupancy_bit_seconds[lane]
                    ),
                    reference_time_seconds=run.ref_times[i].seconds_for(
                        position
                    ),
                    time_big_seconds=float(st.time_big_seconds[lane]),
                    time_small_seconds=float(st.time_small_seconds[lane]),
                    instructions_big=int(st.instructions_big[lane]),
                    instructions_small=int(st.instructions_small[lane]),
                    dram_accesses=float(st.dram_accesses[lane]),
                    l3_accesses=float(st.l3_accesses[lane]),
                    migrations=int(st.migrations[lane]),
                    completed_runs=position // profile.instructions,
                )
            )
        result = RunResult(
            machine_name=run.machine.name,
            scheduler_name=run.request.scheduler,
            quanta=int(st.quantum[r]),
            duration_seconds=now,
            apps=records,
        )
        reg = obs_metrics.ACTIVE
        if reg is not None:
            self._record_metrics(reg, result)
        return result

    @staticmethod
    def _record_metrics(reg, result: RunResult) -> None:
        # Mirrors MulticoreSimulation._record_metrics: batched sweeps
        # feed the same obs series with the same per-run totals.
        reg.counter("sim.runs").inc()
        reg.counter("sim.quanta").inc(result.quanta)
        reg.gauge("sim.apps").set(len(result.apps))
        for rec in result.apps:
            reg.counter("sim.instructions", core="big").inc(
                rec.instructions_big
            )
            reg.counter("sim.instructions", core="small").inc(
                rec.instructions_small
            )
            reg.counter("sched.migrations").inc(rec.migrations)


def run_workload_batch(
    requests: Sequence[BatchRunRequest],
) -> list[RunResult]:
    """Run a batch of fully-specified requests; results in order."""
    return BatchedSweep(requests).run()


def run_workloads_batched(
    machine: MachineConfig,
    workloads: Sequence[WorkloadMix | Sequence[str]],
    scheduler_names: Sequence[str] = ("random", "performance", "reliability"),
    *,
    instructions: int | None = None,
    counter_mode: AceCounterMode = AceCounterMode.FULL,
) -> dict[str, list[RunResult]]:
    """Batched equivalent of :func:`repro.sim.experiment.sweep`.

    Builds the same (workload x scheduler) grid with the same
    content-derived seeds (the workload's index in ``workloads``) and
    runs it as one fused :class:`BatchedSweep`.  Returns
    ``{scheduler_name: [RunResult per workload, in order]}``.
    """
    requests = []
    for index, mix in enumerate(workloads):
        names = mix.benchmarks if isinstance(mix, WorkloadMix) else tuple(mix)
        for name in scheduler_names:
            requests.append(
                BatchRunRequest(
                    machine=machine,
                    benchmarks=names,
                    scheduler=name,
                    instructions=instructions,
                    seed=index,
                    counter_mode=counter_mode,
                )
            )
    flat = BatchedSweep(requests).run()
    results: dict[str, list[RunResult]] = {n: [] for n in scheduler_names}
    for request, result in zip(requests, flat):
        results[request.scheduler].append(result)
    return results


# -- engine integration ----------------------------------------------

from repro.runtime.engine import ExecutionEngine, Job  # noqa: E402
from repro.runtime.events import JobStarted  # noqa: E402
from repro.runtime.retry import FailurePolicy  # noqa: E402
from repro.sim.serialize import run_result_to_dict, save_run  # noqa: E402


class BatchedExecutionEngine(ExecutionEngine):
    """ExecutionEngine that fuses all uncached jobs into one sweep.

    Drop-in for :class:`~repro.runtime.engine.ExecutionEngine` in
    ``Campaign``/``experiment.sweep``: cache loads, result stores,
    checks, events, and checkpointing are inherited unchanged; only
    the execute step changes, running every uncached job through one
    :class:`BatchedSweep` instead of per-job worker processes.

    Unsupported engine features are rejected up front: per-job
    ``retry``/``timeout_seconds``/``fault_plan`` have no meaning for a
    fused batch (the batched path has no per-job failure domain).
    With ``metrics=True`` the whole batch runs under one registry and
    the combined snapshot is attached to the batch's first job; merged
    totals equal the scalar engine's (snapshots merge commutatively),
    only the per-job attribution is coarser.
    """

    def __init__(self, jobs: int = 1, **kwargs):
        for name in ("retry", "timeout_seconds", "fault_plan"):
            if kwargs.pop(name, None) is not None:
                raise ValueError(
                    f"BatchedExecutionEngine does not support {name!r}: "
                    "the batched driver executes jobs as one fused sweep"
                )
        super().__init__(jobs, **kwargs)

    def _run_serial(self, jobs_list: Sequence[Job], outcomes: dict) -> None:
        self._run_batched(jobs_list, outcomes)

    def _run_parallel(self, jobs_list: Sequence[Job], outcomes: dict) -> None:
        self._run_batched(jobs_list, outcomes)

    def _run_batched(self, jobs_list: Sequence[Job], outcomes: dict) -> None:
        self._batch_started = time.perf_counter()
        requests = []
        for job in jobs_list:
            machine = (
                job.machine
                if job.machine is not None
                else job.spec.build_machine()
            )
            requests.append(
                BatchRunRequest(
                    machine=machine,
                    benchmarks=job.spec.benchmarks,
                    scheduler=job.spec.scheduler,
                    instructions=job.spec.instructions,
                    seed=job.spec.seed,
                    counter_mode=AceCounterMode(job.spec.counter_mode),
                )
            )
        remaining = len(jobs_list)
        for job in jobs_list:
            remaining -= 1
            self._observe_queue(
                time.perf_counter() - self._batch_started, remaining
            )
            self._emit(JobStarted(index=job.index, label=job.label))
        started = time.perf_counter()
        try:
            with obs_tracing.span("runtime.execute_batch"):
                if self.metrics:
                    with obs_metrics.collecting() as registry:
                        with registry.timer("runtime.job_seconds"):
                            results = BatchedSweep(requests).run()
                    metrics_data = registry.snapshot().to_dict()
                else:
                    results = BatchedSweep(requests).run()
                    metrics_data = None
        except Exception as error:
            wall = time.perf_counter() - started
            message = f"{type(error).__name__}: {error}"
            fail_fast = self.failure_policy is FailurePolicy.FAIL_FAST
            for position, job in enumerate(jobs_list):
                if position == 0:
                    self._record_failure(job, message, 1, wall, outcomes)
                elif fail_fast:
                    self._record_failure(
                        job, "skipped (fail-fast abort)", 0, 0.0, outcomes
                    )
                else:
                    self._record_failure(job, message, 1, 0.0, outcomes)
            return
        batch_wall = time.perf_counter() - started
        per_wall = batch_wall / len(jobs_list) if jobs_list else 0.0
        aborted = False
        for position, (job, result) in enumerate(zip(jobs_list, results)):
            if aborted:
                self._record_failure(
                    job, "skipped (fail-fast abort)", 0, 0.0, outcomes
                )
                continue
            if job.cache_path is not None:
                save_run(result, job.cache_path)
            ok = self._record_success(
                job,
                run_result_to_dict(result),
                1,
                per_wall,
                outcomes,
                metrics_data if position == 0 else None,
            )
            if not ok and self.failure_policy is FailurePolicy.FAIL_FAST:
                aborted = True
