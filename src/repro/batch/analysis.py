"""Batched mechanistic phase analysis over array inputs.

``analyze_big_phase``/``analyze_small_phase`` rewritten over arrays:
one call evaluates N (phase-features, memory-environment) pairs with
element-wise numpy float64 ops in *exactly* the scalar code's
association order, so every output matches the scalar analyzer
bit-for-bit (IEEE-754 element-wise ops are identical to CPython float
ops; only re-association could diverge, and none happens here).

Results come back as a :class:`BatchPhaseAnalysis` with a unified
seven-column structure layout (:data:`STRUCTURE_COLUMNS`); columns a
core type does not have are exactly ``0.0``.  ``row(i)`` rebuilds a
scalar :class:`~repro.cores.mechanistic.PhaseAnalysis` for the
equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.batch.features import PhaseFeatures
from repro.config.structures import StructureKind
from repro.cores.mechanistic import PhaseAnalysis

#: Unified structure-column order of the batched ACE/occupancy arrays.
STRUCTURE_COLUMNS: tuple[StructureKind, ...] = (
    StructureKind.ROB,
    StructureKind.ISSUE_QUEUE,
    StructureKind.LOAD_QUEUE,
    StructureKind.STORE_QUEUE,
    StructureKind.REGISTER_FILE,
    StructureKind.FUNCTIONAL_UNITS,
    StructureKind.PIPELINE_LATCHES,
)

_COL = {kind: i for i, kind in enumerate(STRUCTURE_COLUMNS)}
_ROB, _IQ, _LQ, _SQ, _RF, _FU, _PL = range(7)

#: Dict key order of the scalar analyzers' ace/occupancy dicts, as
#: column indices -- the fold order of ``sum(dict.values())``.
BIG_KEY_COLUMNS = (_ROB, _IQ, _LQ, _SQ, _RF, _FU)
SMALL_KEY_COLUMNS = (_PL, _IQ, _SQ, _RF, _FU)

#: Per-regime constants of the big-core model (mechanistic.py).
_IQ_FRACTION = {"base": 0.20, "fe": 0.10, "llc": 0.30, "mem": 0.30}
_REG_LIVE_FRACTION = {"base": 0.35, "fe": 0.20, "llc": 0.50, "mem": 0.70}


@dataclass
class BatchPhaseAnalysis:
    """Columnar phase-analysis results for N (features, env) pairs.

    Attributes:
        cpi / ipc: per-pair CPI and IPC.
        ace / occupancy: (N, 7) bit-rate arrays in
            :data:`STRUCTURE_COLUMNS` order.
        dram_pi / l3_pi: per-instruction DRAM / L3 access rates.
        kinds: per-pair core kind ("big"/"small").
    """

    cpi: np.ndarray
    ipc: np.ndarray
    ace: np.ndarray
    occupancy: np.ndarray
    dram_pi: np.ndarray
    l3_pi: np.ndarray
    kinds: tuple[str, ...]

    def row(self, i: int) -> PhaseAnalysis:
        """Rebuild the scalar PhaseAnalysis view of one pair.

        The CPI components are not tracked per-column in the batch
        (only their sum feeds the simulation); the reconstructed
        ``cpi_components`` holds the full CPI under a single key so
        ``PhaseAnalysis.cpi`` still reports the exact batched value.
        """
        keys = (
            BIG_KEY_COLUMNS if self.kinds[i] == "big" else SMALL_KEY_COLUMNS
        )
        ace = {STRUCTURE_COLUMNS[c]: float(self.ace[i, c]) for c in keys}
        occ = {STRUCTURE_COLUMNS[c]: float(self.occupancy[i, c]) for c in keys}
        return PhaseAnalysis(
            ipc=float(self.ipc[i]),
            cpi_components={"total": float(self.cpi[i])},
            ace_bits_per_cycle=ace,
            occupancy_bits_per_cycle=occ,
            dram_accesses_per_instruction=float(self.dram_pi[i]),
            l3_accesses_per_instruction=float(self.l3_pi[i]),
        )


def _gather(feats: Sequence[PhaseFeatures], name: str) -> np.ndarray:
    return np.array([getattr(f, name) for f in feats], dtype=np.float64)


def _miss_and_latency(
    feats: Sequence[PhaseFeatures], shares: np.ndarray, mults: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(m3, dram_lat) under the environments, scalar-op order."""
    share = np.minimum(np.maximum(shares, 0.0), 1.0)
    l3_mpki = _gather(feats, "l3_mpki")
    sens_headroom = _gather(feats, "sens_headroom")
    m3 = (l3_mpki + sens_headroom * (1.0 - share)) / 1000.0
    m3 = np.minimum(m3, _gather(feats, "m2"))
    dram_lat = _gather(feats, "l3_lat") + _gather(feats, "dram_base") * mults
    return m3, dram_lat


def _fu_bits_batch(
    feats: Sequence[PhaseFeatures], ipc: np.ndarray
) -> np.ndarray:
    """Vectorized ``_fu_bits`` (ACE == occupied, as in the scalar).

    All features in one call must share a functional-unit layout (the
    caller groups by core config), so per-pool latency/capacity/bits
    are scalars and only the mix fraction varies per feature.
    """
    occupied = np.zeros(len(feats), dtype=np.float64)
    n_pools = len(feats[0].pools)
    for p in range(n_pools):
        frac = np.array([f.pools[p][0] for f in feats], dtype=np.float64)
        latency = feats[0].pools[p][1]
        max_in_flight = feats[0].pools[p][2]
        bits = feats[0].pools[p][3]
        busy = np.minimum(ipc * frac * latency, max_in_flight)
        occupied = occupied + busy * bits
    extra = _gather(feats, "extra_frac")
    occupied = occupied + (
        np.minimum(ipc * extra, feats[0].alu_count) * feats[0].alu_bits
    )
    return occupied


def _analyze_big(
    feats: Sequence[PhaseFeatures], shares: np.ndarray, mults: np.ndarray
) -> BatchPhaseAnalysis:
    n = len(feats)
    m3, dram_lat = _miss_and_latency(feats, shares, mults)
    m2 = _gather(feats, "m2")
    l3_lat = _gather(feats, "l3_lat")
    comp_llc = (m2 - m3) * l3_lat * 0.55  # _L3_EXPOSED_BIG
    comp_mem = m3 * dram_lat / _gather(feats, "mlp")
    cpi = _gather(feats, "cpi_prefix") + comp_llc + comp_mem
    ipc = 1.0 / cpi

    t_mem = comp_mem
    t_fe = _gather(feats, "t_fe")
    t_llc = comp_llc
    t_base = cpi - t_mem - t_fe - t_llc

    rob_size = _gather(feats, "rob_size")
    fixed = np.array([f.occ_base_fixed for f in feats])
    fe_events = np.where(fixed, 1.0, _gather(feats, "fe_events"))
    base_interval = t_base / fe_events
    time_to_fill = _gather(feats, "time_to_fill")
    refill_occ = _gather(feats, "refill_occ")
    fill_rate = _gather(feats, "fill_rate")
    occ_base_ramp = np.where(
        base_interval <= time_to_fill,
        refill_occ + fill_rate * base_interval / 2.0,
        (_gather(feats, "ramp_ttf") + rob_size * (base_interval - time_to_fill))
        / np.where(base_interval != 0.0, base_interval, 1.0),
    )
    occ_base = np.where(fixed, _gather(feats, "occ_base_const"), occ_base_ramp)
    occ_mem = _gather(feats, "occ_mem")
    occ_llc = (occ_base + rob_size) / 2.0
    occ_fe = occ_base * 0.25  # _FE_OCCUPANCY_FACTOR

    non_nop = _gather(feats, "non_nop")
    wp_mem = _gather(feats, "wp_mem")
    run_cap = _gather(feats, "run_cap")
    run_cap_finite = np.array([f.run_cap_finite for f in feats])
    iq_size = _gather(feats, "iq_size")
    iq_bits = _gather(feats, "iq_bits")
    lq_size = _gather(feats, "lq_size")
    lq_bits = _gather(feats, "lq_bits")
    sq_size = _gather(feats, "sq_size")
    sq_bits = _gather(feats, "sq_bits")
    rob_bits = _gather(feats, "rob_bits")
    load = _gather(feats, "load")
    store = _gather(feats, "store")
    writer_frac = _gather(feats, "writer_frac")
    rbpw = _gather(feats, "reg_bits_per_writer")

    zeros = np.zeros(n, dtype=np.float64)
    ace = np.zeros((n, 7), dtype=np.float64)
    occupancy = np.zeros((n, 7), dtype=np.float64)
    regimes = (
        ("base", t_base, occ_base),
        ("fe", t_fe, occ_fe),
        ("llc", t_llc, occ_llc),
        ("mem", t_mem, occ_mem),
    )
    for regime, t_ci, occ in regimes:
        active = t_ci > 0.0
        weight = np.where(active, t_ci / cpi, 0.0)
        wp = wp_mem if regime == "mem" else zeros
        correct_path = 1.0 - wp
        cap_applies = (occ > 0) & run_cap_finite
        occ_safe = np.where(occ > 0, occ, 1.0)
        correct_path = np.where(
            cap_applies,
            np.minimum(correct_path, run_cap / occ_safe),
            correct_path,
        )
        ace_frac = non_nop * correct_path
        occ_iq = np.minimum(iq_size, occ * _IQ_FRACTION[regime])
        occ_lq = np.minimum(lq_size, occ * load)
        occ_sq = np.minimum(sq_size, occ * store * 1.2)  # _STORE_RESIDENCY
        live_regs = occ * writer_frac * _REG_LIVE_FRACTION[regime]

        def _add(col: int, contribution: np.ndarray, into: np.ndarray) -> None:
            into[:, col] = into[:, col] + np.where(active, contribution, 0.0)

        _add(_ROB, weight * occ * rob_bits, occupancy)
        _add(_IQ, weight * occ_iq * iq_bits, occupancy)
        _add(_LQ, weight * occ_lq * lq_bits, occupancy)
        _add(_SQ, weight * occ_sq * sq_bits, occupancy)
        _add(_RF, weight * (live_regs * rbpw), occupancy)
        _add(_ROB, weight * occ * rob_bits * ace_frac, ace)
        _add(_IQ, weight * occ_iq * iq_bits * ace_frac, ace)
        _add(_LQ, weight * occ_lq * lq_bits * ace_frac, ace)
        _add(_SQ, weight * occ_sq * sq_bits * ace_frac, ace)
        _add(_RF, weight * (live_regs * rbpw * ace_frac), ace)

    arch_add = _gather(feats, "arch_add")
    ace[:, _RF] = ace[:, _RF] + arch_add
    occupancy[:, _RF] = occupancy[:, _RF] + arch_add
    fu = _fu_bits_batch(feats, ipc)
    ace[:, _FU] = fu
    occupancy[:, _FU] = fu

    return BatchPhaseAnalysis(
        cpi=cpi, ipc=ipc, ace=ace, occupancy=occupancy,
        dram_pi=m3, l3_pi=m2, kinds=("big",) * n,
    )


def _analyze_small(
    feats: Sequence[PhaseFeatures], shares: np.ndarray, mults: np.ndarray
) -> BatchPhaseAnalysis:
    n = len(feats)
    m3, dram_lat = _miss_and_latency(feats, shares, mults)
    m2 = _gather(feats, "m2")
    l3_lat = _gather(feats, "l3_lat")
    comp_l2 = _gather(feats, "comp_l2")
    comp_llc = (m2 - m3) * l3_lat
    comp_mem = m3 * dram_lat / _gather(feats, "mlp")  # _SMALL_MLP == 1.0
    cpi = _gather(feats, "cpi_prefix") + comp_llc + comp_mem
    ipc = 1.0 / cpi

    t_stall = comp_l2 + comp_llc + comp_mem
    t_fe = _gather(feats, "t_fe")
    t_flow = cpi - t_stall - t_fe

    latch_bits = _gather(feats, "latch_bits")
    iq_bits = _gather(feats, "iq_bits")
    sq_size = _gather(feats, "sq_size")
    sq_bits = _gather(feats, "sq_bits")
    store = _gather(feats, "store")
    non_nop = _gather(feats, "non_nop")

    # _SMALL_STORE_DRAIN == 3.0
    sq_base = np.minimum(sq_size, ipc * store * 3.0)
    sq_occ = {
        "flow": sq_base,
        "fe": sq_base * 0.5,
        "stall": np.minimum(sq_size, sq_base + _gather(feats, "store_drain_extra")),
    }
    iq_occ = {
        "flow": _gather(feats, "iq_occ_flow"),
        "fe": _gather(feats, "iq_occ_fe"),
        "stall": _gather(feats, "iq_occ_stall"),
    }
    occ_by_regime = {
        "flow": _gather(feats, "occ_flow"),
        "fe": _gather(feats, "occ_fe_small"),
        "stall": _gather(feats, "occ_stall"),
    }

    ace = np.zeros((n, 7), dtype=np.float64)
    occupancy = np.zeros((n, 7), dtype=np.float64)
    arch_add = _gather(feats, "arch_add")
    ace[:, _RF] = arch_add
    occupancy[:, _RF] = arch_add

    regimes = (("flow", t_flow), ("fe", t_fe), ("stall", t_stall))
    for regime, t_ci in regimes:
        active = t_ci > 0.0
        weight = np.where(active, t_ci / cpi, 0.0)
        occ = occ_by_regime[regime]

        def _add(col: int, contribution: np.ndarray, into: np.ndarray) -> None:
            into[:, col] = into[:, col] + np.where(active, contribution, 0.0)

        _add(_PL, weight * occ * latch_bits, occupancy)
        _add(_IQ, weight * iq_occ[regime] * iq_bits, occupancy)
        _add(_SQ, weight * sq_occ[regime] * sq_bits, occupancy)
        _add(_PL, weight * occ * latch_bits * non_nop, ace)
        _add(_IQ, weight * iq_occ[regime] * iq_bits * non_nop, ace)
        _add(_SQ, weight * sq_occ[regime] * sq_bits * non_nop, ace)

    fu = _fu_bits_batch(feats, ipc)
    ace[:, _FU] = fu
    occupancy[:, _FU] = fu

    return BatchPhaseAnalysis(
        cpi=cpi, ipc=ipc, ace=ace, occupancy=occupancy,
        dram_pi=m3, l3_pi=m2, kinds=("small",) * n,
    )


def analyze_phase_batch(
    feats: Sequence[PhaseFeatures],
    shares: Sequence[float] | np.ndarray,
    mults: Sequence[float] | np.ndarray,
) -> BatchPhaseAnalysis:
    """Analyze N (features, environment) pairs in one shot.

    Pairs may mix core kinds and core configs; they are grouped
    internally (the functional-unit term needs a uniform pool layout
    per numpy call) and reassembled in input order.
    """
    if len(feats) == 0:
        empty = np.zeros(0, dtype=np.float64)
        return BatchPhaseAnalysis(
            cpi=empty, ipc=empty,
            ace=np.zeros((0, 7)), occupancy=np.zeros((0, 7)),
            dram_pi=empty, l3_pi=empty, kinds=(),
        )
    shares = np.asarray(shares, dtype=np.float64)
    mults = np.asarray(mults, dtype=np.float64)
    groups: dict[tuple[str, int], list[int]] = {}
    for i, feat in enumerate(feats):
        groups.setdefault((feat.kind, id(feat.core)), []).append(i)

    n = len(feats)
    cpi = np.zeros(n)
    ipc = np.zeros(n)
    ace = np.zeros((n, 7))
    occupancy = np.zeros((n, 7))
    dram_pi = np.zeros(n)
    l3_pi = np.zeros(n)
    kinds: list[str] = [""] * n
    for (kind, _), indices in groups.items():
        sub_feats = [feats[i] for i in indices]
        idx = np.array(indices, dtype=np.intp)
        analyze = _analyze_big if kind == "big" else _analyze_small
        sub = analyze(sub_feats, shares[idx], mults[idx])
        cpi[idx] = sub.cpi
        ipc[idx] = sub.ipc
        ace[idx] = sub.ace
        occupancy[idx] = sub.occupancy
        dram_pi[idx] = sub.dram_pi
        l3_pi[idx] = sub.l3_pi
        for j, i in enumerate(indices):
            kinds[i] = sub.kinds[j]
    return BatchPhaseAnalysis(
        cpi=cpi, ipc=ipc, ace=ace, occupancy=occupancy,
        dram_pi=dram_pi, l3_pi=l3_pi, kinds=tuple(kinds),
    )
