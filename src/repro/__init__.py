"""repro: reproduction of "Reliability-Aware Scheduling on Heterogeneous
Multicore Processors" (Naithani, Eyerman, Eeckhout; HPCA 2017).

The package is organized bottom-up:

* ``repro.config`` -- core/machine configurations (Table 2).
* ``repro.isa`` / ``repro.workloads`` -- instruction traces and the
  synthetic SPEC CPU2006-like benchmark suite.
* ``repro.memory`` -- caches, hierarchy, shared-resource interference.
* ``repro.cores`` -- mechanistic and trace-driven core models.
* ``repro.ace`` -- the ACE-bit counter architecture and its cost.
* ``repro.metrics`` -- AVF, SER, wSER, SSER, STP.
* ``repro.power`` -- the activity-based power model.
* ``repro.sched`` -- random / performance- / reliability-optimized and
  oracle schedulers (the paper's contribution).
* ``repro.sim`` -- the quantum-driven multicore simulation engine.
"""

__version__ = "1.0.0"
