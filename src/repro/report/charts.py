"""ASCII chart rendering: bar charts and series plots.

Terminal-friendly renditions of the paper's figures -- grouped bar
charts (Figures 7, 8, 9, 12), sorted per-workload series (Figure 6),
and time series (Figure 4).  Pure text output; no plotting backends.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Default chart body width in characters.
DEFAULT_WIDTH = 50


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = DEFAULT_WIDTH,
    max_value: float | None = None,
    value_format: str = "{:.3f}",
    fill: str = "#",
) -> str:
    """Horizontal bar chart: one labelled bar per entry.

    Args:
        values: label -> non-negative value.
        width: bar area width in characters.
        max_value: scale maximum (defaults to the largest value).
        value_format: numeric annotation format.
        fill: bar fill character.
    """
    if not values:
        raise ValueError("need at least one bar")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar values must be non-negative")
    scale = max_value if max_value is not None else max(values.values())
    if scale <= 0:
        scale = 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        filled = int(round(min(value / scale, 1.0) * width))
        annotation = value_format.format(value)
        lines.append(
            f"{label:<{label_width}} |{fill * filled:<{width}}| {annotation}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    *,
    width: int = DEFAULT_WIDTH,
    value_format: str = "{:.3f}",
    fills: Sequence[str] = ("#", "=", "-", "+", "*"),
) -> str:
    """Grouped horizontal bars (one sub-bar per series within a group).

    Mirrors the paper's per-category bar figures: ``groups`` maps a
    group label (e.g. ``"HHLL"``) to ``{series: value}``.
    """
    if not groups:
        raise ValueError("need at least one group")
    series_names: list[str] = []
    for bars in groups.values():
        for name in bars:
            if name not in series_names:
                series_names.append(name)
    scale = max(
        (v for bars in groups.values() for v in bars.values()), default=1.0
    )
    if scale <= 0:
        scale = 1.0
    label_width = max(
        max(len(g) for g in groups), max(len(s) for s in series_names)
    )
    lines = []
    for group, bars in groups.items():
        lines.append(f"{group}:")
        for i, name in enumerate(series_names):
            if name not in bars:
                continue
            value = bars[name]
            filled = int(round(min(value / scale, 1.0) * width))
            fill = fills[i % len(fills)]
            lines.append(
                f"  {name:<{label_width}} |{fill * filled:<{width}}| "
                f"{value_format.format(value)}"
            )
    legend = "  ".join(
        f"{fills[i % len(fills)]}={name}" for i, name in enumerate(series_names)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def series_plot(
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 16,
    markers: str = "*o+x",
) -> str:
    """Scatter-style plot of one or more numeric series over index.

    Used for Figure 6's sorted per-workload curves and Figure 4's ABC
    timelines.  Each series is drawn with its own marker; y is scaled
    to the global min/max.
    """
    if not series or all(len(v) == 0 for v in series.values()):
        raise ValueError("need at least one non-empty series")
    all_values = [v for vals in series.values() for v in vals]
    lo, hi = min(all_values), max(all_values)
    if math.isclose(lo, hi):
        hi = lo + 1.0
    longest = max(len(v) for v in series.values())
    grid = [[" "] * width for _ in range(height)]
    for s_index, (name, values) in enumerate(series.items()):
        marker = markers[s_index % len(markers)]
        for i, value in enumerate(values):
            x = int(round(i / max(longest - 1, 1) * (width - 1)))
            y = int(round((value - lo) / (hi - lo) * (height - 1)))
            grid[height - 1 - y][x] = marker
    lines = [f"{hi:10.3g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{lo:10.3g} +" + "".join(grid[-1]))
    lines.append(" " * 12 + "-" * width)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    *,
    bins: int = 10,
    width: int = DEFAULT_WIDTH,
) -> str:
    """Text histogram of a value distribution."""
    if not values:
        raise ValueError("need at least one value")
    if bins <= 0:
        raise ValueError("bins must be positive")
    lo, hi = min(values), max(values)
    if math.isclose(lo, hi):
        hi = lo + 1.0
    counts = [0] * bins
    for v in values:
        index = min(int((v - lo) / (hi - lo) * bins), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        left = lo + (hi - lo) * i / bins
        right = lo + (hi - lo) * (i + 1) / bins
        filled = int(round(count / peak * width)) if peak else 0
        lines.append(
            f"[{left:9.3g}, {right:9.3g}) |{'#' * filled:<{width}}| {count}"
        )
    return "\n".join(lines)
