"""Plain-text table rendering for reports, benches and the CLI."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_format: str = "{:.3f}",
    min_width: int = 4,
) -> str:
    """Render rows as an aligned plain-text table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  The first column is left-aligned, the rest right-aligned
    (the usual shape for metric tables).
    """
    if not headers:
        raise ValueError("need at least one column")
    rendered = [[_cell(value, float_format) for value in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(min_width, len(header), *(len(r[i]) for r in rendered))
        if rendered
        else max(min_width, len(header))
        for i, header in enumerate(headers)
    ]
    lines = [_format_row(headers, widths), _format_row(
        ["-" * w for w in widths], widths
    )]
    lines += [_format_row(row, widths) for row in rendered]
    return "\n".join(lines)


def _cell(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    parts = [f"{cells[0]:<{widths[0]}}"]
    parts += [f"{cell:>{width}}" for cell, width in zip(cells[1:], widths[1:])]
    return "  ".join(parts)


def format_percent(value: float, signed: bool = True) -> str:
    """Format a ratio as a percentage string (0.25 -> '+25.0%')."""
    sign = "+" if signed else ""
    return f"{100 * value:{sign}.1f}%"
