"""ASCII schedule charts: who ran where, over time.

Renders a run's recorded timeline as a Gantt-style strip per
application: ``B`` for big-core quanta, ``s`` for small-core quanta,
``.`` for parked quanta.  The visual counterpart of Figure 4's
narrative ("calculix is scheduled on the small core initially; upon
the phase change the scheduler migrates the two applications").
"""

from __future__ import annotations

from typing import Sequence

from repro.sim.results import RunResult, TimelinePoint

#: Strip symbols by core type.
SYMBOLS = {"big": "B", "small": "s", "parked": "."}


def schedule_strips(
    timeline: Sequence[TimelinePoint], width: int = 72
) -> dict[str, str]:
    """Per-application core-type strips, downsampled to a width.

    Each character summarizes one bucket of quanta by the core type
    the application occupied most within it.
    """
    if not timeline:
        raise ValueError("timeline is empty (record_timeline=True?)")
    by_app: dict[str, list[str]] = {}
    for point in timeline:
        by_app.setdefault(point.app_name, []).append(point.core_type)
    strips = {}
    for name, types in by_app.items():
        buckets = min(width, len(types))
        strip = []
        for b in range(buckets):
            lo = b * len(types) // buckets
            hi = max((b + 1) * len(types) // buckets, lo + 1)
            bucket = types[lo:hi]
            majority = max(set(bucket), key=bucket.count)
            strip.append(SYMBOLS.get(majority, "?"))
        strips[name] = "".join(strip)
    return strips


def schedule_chart(result: RunResult, width: int = 72) -> str:
    """Render a run's schedule as labelled ASCII strips."""
    strips = schedule_strips(result.timeline, width)
    label_width = max(len(name) for name in strips)
    lines = [
        f"schedule over time ({result.scheduler_name} on "
        f"{result.machine_name}, {result.quanta} quanta; "
        "B=big, s=small, .=parked)"
    ]
    for name, strip in strips.items():
        lines.append(f"{name:<{label_width}} |{strip}|")
    return "\n".join(lines)


def migration_summary(result: RunResult) -> str:
    """One line per application: migrations and core-type shares."""
    lines = []
    for app in result.apps:
        running = app.time_big_seconds + app.time_small_seconds
        big_share = app.time_big_seconds / running if running else 0.0
        lines.append(
            f"{app.name}: {app.migrations} migrations, "
            f"{100 * big_share:.0f}% of running time on big cores"
        )
    return "\n".join(lines)
