"""Plain-text reporting: tables, ASCII charts, run summaries."""

from repro.report.gantt import migration_summary, schedule_chart, schedule_strips
from repro.report.charts import (
    bar_chart,
    grouped_bar_chart,
    histogram,
    series_plot,
)
from repro.report.summary import comparison_summary, run_summary, sweep_summary
from repro.report.tables import format_percent, format_table

__all__ = [
    "bar_chart",
    "comparison_summary",
    "format_percent",
    "format_table",
    "grouped_bar_chart",
    "histogram",
    "migration_summary",
    "run_summary",
    "schedule_chart",
    "schedule_strips",
    "series_plot",
    "sweep_summary",
]
