"""Higher-level report builders over simulation results."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.power import PowerModel
from repro.report.tables import format_percent, format_table
from repro.sim.results import RunResult


def run_summary(result: RunResult, power_model: PowerModel | None = None) -> str:
    """One-run report: system metrics plus a per-application table."""
    lines = [
        f"machine {result.machine_name}, scheduler {result.scheduler_name}: "
        f"{result.quanta} quanta, {1e3 * result.duration_seconds:.1f} ms",
        f"SSER {result.sser:.4e}   STP {result.stp:.3f}   "
        f"ANTT {result.antt:.3f}",
    ]
    if power_model is not None:
        power = power_model.run_power(result)
        lines.append(
            f"power: chip {power.chip_watts:.2f} W, "
            f"system {power.system_watts:.2f} W"
        )
    rows = []
    for app in result.apps:
        big_share = (
            app.time_big_seconds / app.time_seconds if app.time_seconds else 0.0
        )
        rows.append([
            app.name,
            app.instructions,
            float(app.wser),
            float(app.slowdown),
            format_percent(big_share, signed=False),
            app.migrations,
        ])
    lines.append(format_table(
        ["application", "instructions", "wSER", "slowdown", "big-time",
         "migrations"],
        rows,
        float_format="{:.3e}",
    ))
    return "\n".join(lines)


def comparison_summary(results: Mapping[str, RunResult]) -> str:
    """Compare schedulers on one workload (normalized to the first)."""
    if not results:
        raise ValueError("need at least one result")
    names = list(results)
    baseline = results[names[0]]
    rows = []
    for name in names:
        result = results[name]
        rows.append([
            name,
            float(result.sser / baseline.sser),
            float(result.stp / baseline.stp),
            float(result.antt / baseline.antt),
            result.quanta,
        ])
    table = format_table(
        ["scheduler", f"SSER/{names[0]}", f"STP/{names[0]}",
         f"ANTT/{names[0]}", "quanta"],
        rows,
    )
    return table


def sweep_summary(
    per_scheduler: Mapping[str, Sequence[RunResult]],
    baseline: str = "random",
) -> str:
    """Summarize a workload sweep: average normalized SSER and STP."""
    if baseline not in per_scheduler:
        raise ValueError(f"baseline {baseline!r} not in results")
    base = per_scheduler[baseline]
    rows = []
    for name, runs in per_scheduler.items():
        if len(runs) != len(base):
            raise ValueError("sweeps must cover the same workloads")
        sser = [r.sser / b.sser for r, b in zip(runs, base)]
        stp = [r.stp / b.stp for r, b in zip(runs, base)]
        rows.append([
            name,
            float(sum(sser) / len(sser)),
            float(min(sser)),
            float(max(sser)),
            float(sum(stp) / len(stp)),
        ])
    return format_table(
        ["scheduler", "SSER mean", "SSER min", "SSER max", "STP mean"],
        rows,
    )
