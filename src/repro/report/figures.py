"""ASCII renditions of the paper's evaluation figures.

Turn sweep results into terminal figures: the sorted per-workload
curves of Figure 6, the per-category bars of Figure 7, and the power
bars of Figure 12.  Used by ``repro figure`` on the command line; the
benches print the same data as tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.config.machines import MachineConfig
from repro.power import PowerModel
from repro.report.charts import grouped_bar_chart, series_plot
from repro.sim.results import RunResult
from repro.workloads.mixes import WorkloadMix


def _require(results: Mapping[str, Sequence[RunResult]], *names: str) -> None:
    missing = [n for n in names if n not in results]
    if missing:
        raise ValueError(f"sweep results missing schedulers: {missing}")
    lengths = {len(results[n]) for n in names}
    if len(lengths) != 1:
        raise ValueError("sweeps must cover the same workloads")


def render_fig06(results: Mapping[str, Sequence[RunResult]]) -> str:
    """Figure 6: sorted normalized SSER and STP curves."""
    _require(results, "random", "performance", "reliability")
    base = results["random"]
    sser = {
        name: sorted(
            r.sser / b.sser for r, b in zip(results[name], base)
        )
        for name in ("performance", "reliability")
    }
    stp = {
        name: sorted(
            r.stp / b.stp for r, b in zip(results[name], base)
        )
        for name in ("performance", "reliability")
    }
    parts = [
        "Figure 6a: normalized SSER per workload (sorted, lower is better)",
        series_plot(sser, height=12),
        "",
        "Figure 6b: normalized STP per workload (sorted, higher is better)",
        series_plot(stp, height=12),
    ]
    return "\n".join(parts)


def render_fig07(
    results: Mapping[str, Sequence[RunResult]],
    workloads: Sequence[WorkloadMix],
) -> str:
    """Figure 7: normalized SSER per workload category."""
    _require(results, "random", "performance", "reliability")
    if len(workloads) != len(results["random"]):
        raise ValueError("need one workload mix per run")
    groups: dict[str, dict[str, list[float]]] = {}
    for i, mix in enumerate(workloads):
        bucket = groups.setdefault(
            mix.category, {"performance": [], "reliability": []}
        )
        for name in ("performance", "reliability"):
            bucket[name].append(
                results[name][i].sser / results["random"][i].sser
            )
    chart_groups = {
        category: {
            name: sum(vals) / len(vals) for name, vals in bucket.items()
        }
        for category, bucket in groups.items()
    }
    return (
        "Figure 7: normalized SSER per category (vs random, lower is "
        "better)\n" + grouped_bar_chart(chart_groups, width=40)
    )


def render_fig12(
    results: Mapping[str, Sequence[RunResult]], machine: MachineConfig
) -> str:
    """Figure 12: average chip and system power per scheduler."""
    _require(results, *results.keys())
    model = PowerModel(machine)
    chart_groups = {}
    for level in ("chip", "system"):
        chart_groups[level] = {}
        for name, runs in results.items():
            powers = [model.run_power(r) for r in runs]
            watts = [
                p.chip_watts if level == "chip" else p.system_watts
                for p in powers
            ]
            chart_groups[level][name] = sum(watts) / len(watts)
    return (
        "Figure 12: average power (W) per scheduler\n"
        + grouped_bar_chart(chart_groups, width=40, value_format="{:.2f}")
    )
