"""Command-line interface for the reproduction."""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
