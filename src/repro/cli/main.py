"""`repro` command-line interface.

Subcommands:

* ``repro run``       -- run one workload under one scheduler
* ``repro compare``   -- compare the three schedulers on a workload
* ``repro sweep``     -- the 36-workload evaluation sweep
* ``repro shard``     -- the sweep across N shard worker processes
* ``repro avf``       -- suite AVF spectrum and H/M/L classes (Fig. 1)
* ``repro oracle``    -- static-schedule enumeration (Section 2.4)
* ``repro workloads`` -- list the canonical workload mixes
* ``repro trace``     -- generate and inspect a synthetic trace
* ``repro cost``      -- ACE counter hardware cost (Section 4.2)
* ``repro figure``    -- render an evaluation figure as an ASCII chart
* ``repro inject``    -- fault-injection campaign vs ACE counting
* ``repro events``    -- replay a campaign event log to job timings
* ``repro resume``    -- finish an interrupted campaign from its log
* ``repro check``     -- paper-invariant fuzzing + golden corpus
* ``repro bench``     -- simulation hot-path performance benchmarks
* ``repro stats``     -- aggregate metrics snapshots from an event log
* ``repro explain``   -- record and explain scheduler decision traces
* ``repro serve``     -- interactive open-system scheduler service
* ``repro load``      -- open-system load generator (delay-vs-SSER)
* ``repro postmortem``-- render crash flight-recorder bundles
* ``repro top``       -- live fleet view over a status socket

``repro sweep`` and ``repro figure`` execute through the
:mod:`repro.runtime` engine: ``--jobs N`` (or ``REPRO_JOBS=N``) fans
runs out over N worker processes, ``--event-log FILE`` appends
structured JSONL progress events for post-hoc analysis, and
``--metrics`` makes every job emit a mergeable metrics snapshot into
the event stream (aggregate with ``repro stats``).  ``repro sweep
--store DIR --event-log FILE`` makes the sweep durable: if the process
is killed, ``repro resume FILE`` finishes the remaining jobs and
reports results identical to an uninterrupted run.  ``repro run
--profile`` prints the span tree and metrics of one run, and ``repro
trace --spans FILE`` renders a span tree saved with ``--obs-out``
(see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.cli import commands

DEFAULT_INSTRUCTIONS = 100_000_000


def _add_machine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--machine", default="2B2S",
                        help="HCMP topology: 1B1S, 2B2S, 1B3S, 3B1S, 4B4S")
    parser.add_argument("--small-frequency", type=float, default=None,
                        help="small-core frequency in GHz (default: 2.66)")


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for parallel execution "
                             "(default: the REPRO_JOBS env var, else 1)")
    parser.add_argument("--event-log", default=None, metavar="FILE",
                        help="append structured JSONL progress events "
                             "to FILE (replay with `repro events`)")
    parser.add_argument("--check", action="store_true",
                        help="validate every run against the paper "
                             "invariants (repro.check); an invariant "
                             "violation fails the job")
    parser.add_argument("--metrics", action="store_true",
                        help="collect a repro.obs metrics registry in "
                             "every job and emit its snapshot into the "
                             "event stream (aggregate with `repro "
                             "stats`)")


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmarks", required=True,
                        help="comma-separated benchmark names")
    parser.add_argument("--instructions", type=int,
                        default=DEFAULT_INSTRUCTIONS,
                        help="instructions per benchmark")
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reliability-aware scheduling on heterogeneous "
                    "multicores (HPCA 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one workload")
    _add_machine_arguments(run)
    _add_workload_arguments(run)
    run.add_argument("--scheduler", default="reliability",
                     choices=("random", "performance", "reliability",
                              "modes"))
    run.add_argument("--rob-only", action="store_true",
                     help="use the 296-byte ROB-only counters")
    run.add_argument("--power", action="store_true",
                     help="include power estimates")
    run.add_argument("--gantt", action="store_true",
                     help="draw an ASCII schedule chart")
    run.add_argument("--profile", action="store_true",
                     help="collect and print the run's span tree and "
                          "metrics registry (repro.obs)")
    run.add_argument("--obs-out", default=None, metavar="FILE",
                     help="write the run's metrics snapshot and span "
                          "tree as JSON (render with `repro trace "
                          "--spans FILE`)")
    run.set_defaults(func=commands.cmd_run)

    compare = subparsers.add_parser("compare",
                                    help="compare the three schedulers")
    _add_machine_arguments(compare)
    _add_workload_arguments(compare)
    compare.set_defaults(func=commands.cmd_compare)

    sweep = subparsers.add_parser("sweep", help="36-workload sweep")
    _add_machine_arguments(sweep)
    sweep.add_argument("--programs", type=int, default=4, choices=(2, 4, 8))
    sweep.add_argument("--instructions", type=int,
                       default=DEFAULT_INSTRUCTIONS)
    sweep.add_argument("--workload-seed", type=int, default=42)
    sweep.add_argument("--verbose", action="store_true")
    sweep.add_argument("--store", default=None, metavar="DIR",
                       help="persist completed results in DIR (one "
                            "atomically-written file per run); with "
                            "--event-log, an interrupted sweep can be "
                            "finished with `repro resume`")
    sweep.add_argument("--batched", action="store_true",
                       help="advance the whole sweep as one cross-run "
                            "numpy batch (repro.batch); results are "
                            "byte-identical to the scalar engine")
    sweep.add_argument("--modes", action="store_true",
                       help="also run the protection-mode-aware "
                            "scheduler (placement x none/DMR/checkpoint "
                            "search) and report mode usage plus the "
                            "uncore-extended per-component SSER "
                            "breakdown")
    _add_runtime_arguments(sweep)
    sweep.set_defaults(func=commands.cmd_sweep)

    shard = subparsers.add_parser(
        "shard",
        help="run the sweep across N shard worker processes",
    )
    _add_machine_arguments(shard)
    shard.add_argument("--programs", type=int, default=4, choices=(2, 4, 8))
    shard.add_argument("--instructions", type=int,
                       default=DEFAULT_INSTRUCTIONS)
    shard.add_argument("--workload-seed", type=int, default=42)
    shard.add_argument("--shards", type=int, default=2, metavar="N",
                       help="shard worker count (stdout, store and "
                            "metrics are byte-identical for any N)")
    shard.add_argument("--verbose", action="store_true")
    shard.add_argument("--store", default=None, metavar="DIR",
                       help="shared content-addressed result store; "
                            "with --event-log, a killed fleet can be "
                            "finished with `repro resume`")
    shard.add_argument("--batched", action="store_true",
                       help="each shard advances its runs as one "
                            "cross-run numpy batch (repro.batch)")
    shard.add_argument("--shard-logs", action="store_true",
                       help="also write each shard's raw stream to "
                            "EVENT_LOG.shardN.jsonl (merge them back "
                            "with `repro events A B ...`)")
    shard.add_argument("--status-socket", default=None, metavar="PATH",
                       help="serve live fleet status (per-shard "
                            "done/failed/queued, runs/s, ETA) on a "
                            "UNIX socket speaking the `repro serve` "
                            "framing")
    shard.add_argument("--transport", default="process",
                       choices=("process", "inprocess"),
                       help="worker transport: subprocess pipes "
                            "(default) or in-process (deterministic, "
                            "for tests)")
    shard.add_argument("--event-log", default=None, metavar="FILE",
                       help="append the canonically-merged JSONL event "
                            "stream to FILE (replay with `repro "
                            "events`; resume with `repro resume`)")
    shard.add_argument("--check", action="store_true",
                       help="validate every run against the paper "
                            "invariants (repro.check)")
    shard.add_argument("--metrics", action="store_true",
                       help="collect per-shard metrics registries and "
                            "fold them into one fleet snapshot")
    shard.add_argument("--spans", action="store_true",
                       help="collect per-job span trees; workers ship "
                            "them as span_snapshot events and the "
                            "coordinator grafts a fleet-wide span "
                            "forest (render with `repro stats --spans`)")
    shard.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job wall-clock timeout inside every "
                            "shard worker; a timed-out job fails and "
                            "dumps a postmortem bundle")
    shard.add_argument("--failures", default="fail-fast",
                       choices=("fail-fast", "collect"),
                       help="fail-fast: raise after the fleet drains "
                            "(default); collect: report failures in "
                            "the job table and exit 1")
    shard.add_argument("--inject-fail", default=None, metavar="INDEX:N",
                       help="chaos drill: fail global job INDEX for its "
                            "first N attempts (repeatable as a comma "
                            "list, e.g. 3:99,7:1)")
    shard.add_argument("--inject-sleep", default=None,
                       metavar="INDEX:SECONDS",
                       help="chaos drill: stall global job INDEX by "
                            "SECONDS per attempt (comma list; pair "
                            "with --timeout to force timeout "
                            "postmortems)")
    shard.set_defaults(func=commands.cmd_shard)

    resume = subparsers.add_parser(
        "resume",
        help="finish an interrupted campaign from its event log",
    )
    resume.add_argument("path", help="JSONL event log of the interrupted "
                                     "campaign (written with --event-log)")
    resume.add_argument("--store", default=None, metavar="DIR",
                        help="result-store directory (default: the one "
                             "recorded in the log's campaign plan)")
    resume.add_argument("--verbose", action="store_true")
    resume.add_argument("--jobs", type=int, default=None,
                        help="worker processes for parallel execution "
                             "(default: the REPRO_JOBS env var, else 1)")
    resume.add_argument("--event-log", default=None, metavar="FILE",
                        help="append the resumed run's events to FILE "
                             "(default: the resumed log itself)")
    resume.add_argument("--check", action="store_true",
                        help="validate every run against the paper "
                             "invariants (repro.check)")
    resume.add_argument("--shards", type=int, default=None, metavar="N",
                        help="resume through the shard coordinator "
                             "with N workers (default: the shard "
                             "count recorded in the log's plan; 1 "
                             "forces a serial resume)")
    resume.set_defaults(func=commands.cmd_resume)

    avf = subparsers.add_parser("avf", help="suite AVF spectrum")
    avf.add_argument("--chart", action="store_true",
                     help="draw an ASCII bar chart")
    avf.set_defaults(func=commands.cmd_avf)

    oracle = subparsers.add_parser("oracle",
                                   help="static-schedule enumeration")
    _add_machine_arguments(oracle)
    _add_workload_arguments(oracle)
    oracle.set_defaults(func=commands.cmd_oracle)

    workloads = subparsers.add_parser("workloads",
                                      help="list canonical workload mixes")
    workloads.add_argument("--programs", type=int, default=4,
                           choices=(2, 4, 8))
    workloads.add_argument("--workload-seed", type=int, default=42)
    workloads.set_defaults(func=commands.cmd_workloads)

    trace = subparsers.add_parser("trace",
                                  help="generate and inspect a trace, "
                                       "or render a saved span tree")
    trace.add_argument("benchmark", nargs="?", default=None)
    trace.add_argument("--length", type=int, default=50_000)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--simulate", action="store_true",
                       help="run the trace through both pipeline models")
    trace.add_argument("--spans", default=None, metavar="FILE",
                       help="render a span tree saved with `repro run "
                            "--obs-out` instead of generating a trace")
    trace.set_defaults(func=commands.cmd_trace)

    cost = subparsers.add_parser("cost", help="counter hardware cost")
    cost.set_defaults(func=commands.cmd_cost)

    check = subparsers.add_parser(
        "check",
        help="paper-invariant fuzzing and golden regression corpus",
    )
    check.add_argument("--seed", type=int, default=0,
                       help="differential-fuzzer seed (same seed, "
                            "same findings)")
    check.add_argument("--model-cases", type=int, default=2,
                       help="trace-driven vs mechanistic cross-checks")
    check.add_argument("--run-cases", type=int, default=3,
                       help="randomized multicore runs to validate")
    check.add_argument("--stack-cases", type=int, default=2,
                       help="isolated structure-stack conservation cases")
    check.add_argument("--kernel-cases", type=int, default=2,
                       help="vectorized-kernel vs reference equivalence "
                            "cases")
    check.add_argument("--decision-cases", type=int, default=2,
                       help="scheduler decision-trace replay/consistency "
                            "cases")
    check.add_argument("--resume-cases", type=int, default=2,
                       help="interrupt-and-resume equivalence cases")
    check.add_argument("--service-cases", type=int, default=2,
                       help="open-system serial-vs-parallel feed "
                            "equivalence cases")
    check.add_argument("--batch-cases", type=int, default=2,
                       help="batched-vs-scalar sweep equivalence cases "
                            "(repro.batch differential fuzzing)")
    check.add_argument("--shard-cases", type=int, default=2,
                       help="sharded-campaign partition/resume "
                            "equivalence cases (random per-shard log "
                            "cuts + store corruption)")
    check.add_argument("--mode-cases", type=int, default=2,
                       help="protection-mode scheduler cases: mode "
                            "model conservation, checker-slot "
                            "legality, trace replay, and mode=none "
                            "equivalence vs the placement-only "
                            "scheduler")
    check.add_argument("--golden-dir", default="tests/golden",
                       help="golden regression corpus directory")
    check.add_argument("--update-goldens", action="store_true",
                       help="regenerate the golden corpus instead of "
                            "comparing against it")
    check.add_argument("--skip-fuzz", action="store_true",
                       help="skip the differential fuzzer")
    check.add_argument("--skip-goldens", action="store_true",
                       help="skip the golden corpus comparison")
    check.set_defaults(func=commands.cmd_check)

    bench = subparsers.add_parser(
        "bench",
        help="simulation hot-path performance benchmarks",
    )
    bench.add_argument("--quick", action="store_true",
                       help="smaller inputs, single repeat (for CI)")
    bench.add_argument("--output", default="BENCH_PERF.json",
                       help="machine-readable report path")
    bench.add_argument("--min-ooo-speedup", type=float, default=None,
                       help="fail unless the OoO kernel beats its "
                            "in-process straight-line reference by "
                            "this factor")
    bench.add_argument("--max-disabled-overhead", type=float, default=None,
                       help="fail if dormant observability hooks cost "
                            "more than this fraction on the OoO kernel "
                            "path (e.g. 0.03 = 3%%)")
    bench.add_argument("--min-batch-speedup", type=float, default=None,
                       help="fail unless the batched sweep beats the "
                            "scalar engine by this factor at batch "
                            "size 1024")
    bench.add_argument("--min-shard-speedup", type=float, default=None,
                       help="fail unless `repro shard` at 2 shards "
                            "beats 1 shard by this factor in runs/s")
    bench.set_defaults(func=commands.cmd_bench)

    figure = subparsers.add_parser(
        "figure", help="render an evaluation figure as an ASCII chart"
    )
    figure.add_argument("id", choices=("fig06", "fig07", "fig12"))
    figure.add_argument("--machine", default="2B2S")
    figure.add_argument("--small-frequency", type=float, default=None)
    figure.add_argument("--programs", type=int, default=4, choices=(2, 4, 8))
    figure.add_argument("--instructions", type=int,
                        default=DEFAULT_INSTRUCTIONS)
    figure.add_argument("--cache-dir", default=".repro_cache/figures",
                        help="campaign cache directory")
    figure.add_argument("--verbose", action="store_true")
    _add_runtime_arguments(figure)
    figure.set_defaults(func=commands.cmd_figure)

    events = subparsers.add_parser(
        "events", help="replay a JSONL campaign event log"
    )
    events.add_argument("path", nargs="+",
                        help="event log(s) written with --event-log; "
                             "several (e.g. per-shard logs) merge "
                             "deterministically")
    events.set_defaults(func=commands.cmd_events)

    stats = subparsers.add_parser(
        "stats", help="aggregate metrics snapshots from an event log"
    )
    stats.add_argument("path", nargs="+",
                       help="event log(s) written with --event-log "
                            "and --metrics; several merge "
                            "deterministically before aggregation")
    stats.add_argument("--csv", default=None, metavar="FILE",
                       help="also write the merged registry as CSV")
    stats.add_argument("--openmetrics", action="store_true",
                       help="print the merged registry as an "
                            "OpenMetrics text exposition instead of a "
                            "table (deterministic: byte-identical "
                            "between merged and per-shard logs)")
    stats.add_argument("--spans", action="store_true",
                       help="also merge span_snapshot events into a "
                            "fleet-wide span forest and render it")
    stats.set_defaults(func=commands.cmd_stats)

    explain = subparsers.add_parser(
        "explain",
        help="record, render and validate a scheduler decision trace",
    )
    _add_machine_arguments(explain)
    explain.add_argument("--benchmarks",
                         default="soplex,milc,namd,povray",
                         help="comma-separated benchmark names (one per "
                              "core)")
    explain.add_argument("--instructions", type=int,
                         default=DEFAULT_INSTRUCTIONS,
                         help="instructions per benchmark")
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument("--scheduler", default="reliability",
                         choices=("performance", "reliability",
                                  "constrained", "modes"))
    explain.add_argument("--max-stp-loss", type=float, default=0.05,
                         help="STP-loss bound for the constrained "
                              "scheduler")
    explain.add_argument("--max-quanta", type=int, default=30,
                         help="quanta to render (the full trace is "
                              "always validated)")
    explain.add_argument("--json", default=None, metavar="FILE",
                         help="also write the trace as JSONL (replay "
                              "with --replay)")
    explain.add_argument("--replay", default=None, metavar="FILE",
                         help="render and validate a JSONL trace "
                              "instead of running a simulation")
    explain.add_argument("--schema", action="store_true",
                         help="print the decision-trace schema and exit")
    explain.set_defaults(func=commands.cmd_explain)

    serve = subparsers.add_parser(
        "serve",
        help="interactive open-system scheduler service (JSON lines "
             "over stdin/stdout or a unix socket)",
    )
    _add_machine_arguments(serve)
    serve.add_argument("--scheduler", default="reliability",
                       choices=("performance", "reliability"),
                       help="online placement policy")
    serve.add_argument("--admission", default="fifo",
                       choices=("fifo", "sser"),
                       help="admission-queue ordering policy")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="admission queue capacity; arrivals beyond "
                            "it are shed")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="service-wide start deadline (SLA): queued "
                            "jobs not started in time are shed")
    serve.add_argument("--instructions", type=int, default=1_000_000,
                       help="default instructions for submitted jobs")
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="serve a unix-domain socket at PATH instead "
                            "of stdin/stdout")
    serve.add_argument("--event-feed", default=None, metavar="FILE",
                       help="stream the JSONL service event feed "
                            "(arrive/shed/start/migrate/depart) to FILE")
    serve.set_defaults(func=commands.cmd_serve)

    load = subparsers.add_parser(
        "load",
        help="open-system load generator: queueing delay vs SSER",
    )
    _add_machine_arguments(load)
    load.add_argument("--arrivals", type=int, default=200,
                      help="jobs per arrival-rate point")
    load.add_argument("--seed", type=int, default=0,
                      help="arrival-stream seed (same seed, same feed)")
    load.add_argument("--rates", default="400",
                      help="comma-separated arrival rates in jobs/s")
    load.add_argument("--process", default="poisson",
                      choices=("poisson", "bursty", "diurnal"),
                      help="arrival process")
    load.add_argument("--scheduler", default="reliability",
                      choices=("performance", "reliability"))
    load.add_argument("--admission", default="fifo",
                      choices=("fifo", "sser"))
    load.add_argument("--queue-limit", type=int, default=16)
    load.add_argument("--deadline", type=float, default=None,
                      metavar="SECONDS",
                      help="service-wide start deadline (SLA)")
    load.add_argument("--instructions", type=int, default=1_000_000,
                      help="instructions per arriving job")
    load.add_argument("--jobs", type=int, default=None,
                      help="worker processes for quantum-slice "
                           "execution (default: REPRO_JOBS, else 1)")
    load.add_argument("--event-feed", default=None, metavar="FILE",
                      help="append every point's JSONL event feed to "
                           "FILE")
    load.add_argument("--digest", action="store_true",
                      help="print each point's event-feed sha256 digest")
    load.add_argument("--min-shed-rate", type=float, default=None,
                      help="fail unless some point sheds at least this "
                           "fraction of arrivals")
    load.add_argument("--timeline", action="store_true",
                      help="print a per-window operational timeline for "
                           "each point (queue depth, shed rate, "
                           "p50/p95 start latency)")
    load.add_argument("--timeline-windows", type=int, default=12,
                      metavar="N",
                      help="windows in the --timeline view (default 12)")
    load.set_defaults(func=commands.cmd_load)

    postmortem = subparsers.add_parser(
        "postmortem",
        help="render crash flight-recorder bundles from a result store",
    )
    postmortem.add_argument("key", nargs="?", default=None,
                            help="run key (or unique prefix) of the "
                                 "bundle to render; omit with --list to "
                                 "enumerate")
    postmortem.add_argument("--store", required=True, metavar="DIR",
                            help="result-store directory holding the "
                                 "postmortems/ bundles")
    postmortem.add_argument("--list", action="store_true",
                            help="list available bundles instead of "
                                 "rendering one")
    postmortem.add_argument("--json", action="store_true",
                            help="print the raw bundle JSON instead of "
                                 "the rendered view")
    postmortem.set_defaults(func=commands.cmd_postmortem)

    top = subparsers.add_parser(
        "top",
        help="live fleet view over a `repro shard --status-socket` "
             "socket",
    )
    top.add_argument("socket", help="UNIX socket path served by "
                                    "`repro shard --status-socket`")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (for scripts "
                          "and CI)")
    top.add_argument("--interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="poll interval (default 1s)")
    top.add_argument("--openmetrics", action="store_true",
                     help="print the socket's OpenMetrics exposition "
                          "({\"op\": \"metrics\"}) instead of the "
                          "fleet table")
    top.set_defaults(func=commands.cmd_top)

    inject = subparsers.add_parser(
        "inject", help="fault-injection campaign vs ACE counting"
    )
    inject.add_argument("benchmark")
    inject.add_argument("--length", type=int, default=20_000,
                        help="trace length in instructions")
    inject.add_argument("--trials", type=int, default=20_000,
                        help="bit flips to inject")
    inject.add_argument("--seed", type=int, default=0)
    inject.set_defaults(func=commands.cmd_inject)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
