"""Implementations of the `repro` command-line subcommands.

Each command takes parsed ``argparse`` arguments and returns a process
exit code.  All output is plain text built from `repro.report`.
"""

from __future__ import annotations

import sys

from repro.ace.counters import AceCounterMode
from repro.runtime import (
    CampaignError,
    JsonlEventSink,
    StderrProgressSink,
    default_jobs,
    replay_timings,
)
from repro.ace.hardware_cost import (
    baseline_big_core_cost,
    in_order_core_cost,
    rob_only_big_core_cost,
)
from repro.config import STANDARD_MACHINES, big_core_config, small_core_config
from repro.power import PowerModel
from repro.report import (
    bar_chart,
    comparison_summary,
    format_table,
    run_summary,
    sweep_summary,
)
from repro.sched.oracle import best_sser_schedule, best_stp_schedule
from repro.sim.experiment import (
    SCHEDULER_NAMES,
    make_scheduler,
    run_workload,
    sweep,
)
from repro.sim.isolated import isolated_stats
from repro.sim.multicore import default_models
from repro.workloads.generator import generate_trace
from repro.workloads.mixes import generate_workloads
from repro.workloads.spec2006 import (
    BENCHMARK_NAMES,
    SUITE,
    benchmark,
    big_core_avf,
    classify_benchmarks,
)


def _machine(args):
    try:
        machine = STANDARD_MACHINES[args.machine]()
    except KeyError:
        print(f"error: unknown machine {args.machine!r}; "
              f"known: {', '.join(STANDARD_MACHINES)}", file=sys.stderr)
        return None
    if getattr(args, "small_frequency", None):
        machine = machine.with_small_frequency(args.small_frequency)
    return machine


def _jobs(args) -> int:
    """Worker count: ``--jobs`` flag, else the ``REPRO_JOBS`` env var."""
    if getattr(args, "jobs", None):
        return max(1, args.jobs)
    return default_jobs()


def _sinks(args, verbose: bool):
    """Event sinks for a campaign command (progress + JSONL log)."""
    sinks = []
    if verbose:
        sinks.append(StderrProgressSink())
    if getattr(args, "event_log", None):
        sinks.append(JsonlEventSink(args.event_log))
    return sinks


def _close_sinks(sinks) -> None:
    for sink in sinks:
        sink.close()


def _checks(args):
    """Per-result invariant hook when ``--check`` was passed."""
    if getattr(args, "check", False):
        from repro.check import default_run_checks
        return default_run_checks
    return None


def _benchmarks(args):
    names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]
    unknown = [n for n in names if n not in SUITE]
    if unknown:
        print(f"error: unknown benchmark(s): {', '.join(unknown)}",
              file=sys.stderr)
        return None
    return names


def cmd_run(args) -> int:
    """Run one workload under one scheduler and print a report."""
    machine = _machine(args)
    names = _benchmarks(args)
    if machine is None or names is None:
        return 2
    mode = (AceCounterMode.ROB_ONLY if args.rob_only
            else AceCounterMode.FULL)
    observing = args.profile or args.obs_out
    if observing:
        import contextlib

        from repro.obs import metrics as obs_metrics
        from repro.obs import tracing as obs_tracing

        with contextlib.ExitStack() as stack:
            registry = stack.enter_context(obs_metrics.collecting())
            tracer = stack.enter_context(obs_tracing.collecting())
            result = run_workload(
                machine, names, args.scheduler,
                instructions=args.instructions, seed=args.seed,
                counter_mode=mode, record_timeline=args.gantt,
            )
        snapshot = registry.snapshot()
    else:
        result = run_workload(
            machine, names, args.scheduler,
            instructions=args.instructions, seed=args.seed,
            counter_mode=mode, record_timeline=args.gantt,
        )
    power_model = PowerModel(machine) if args.power else None
    print(run_summary(result, power_model))
    if args.gantt:
        from repro.report.gantt import schedule_chart
        print()
        print(schedule_chart(result))
    if observing:
        from repro.obs.tracing import format_tree, top_self_time
        if args.profile:
            print("\nspan tree:")
            print(format_tree(tracer.root))
            print("\ntop self time:")
            rows = [
                [label, count, float(total * 1e3), float(self_s * 1e3)]
                for label, count, total, self_s in top_self_time(tracer.root)
            ]
            print(format_table(
                ["span", "count", "total ms", "self ms"], rows,
                float_format="{:.3f}",
            ))
            print("\nmetrics:")
            print(format_table(
                ["series", "kind", "count", "total", "mean"],
                snapshot.rows(),
            ))
        if args.obs_out:
            import json

            with open(args.obs_out, "w") as handle:
                json.dump(
                    {
                        "metrics": snapshot.to_dict(),
                        "spans": tracer.to_dict(),
                    },
                    handle, indent=2, sort_keys=True,
                )
                handle.write("\n")
            print(f"\nwrote observability dump to {args.obs_out}")
    return 0


def cmd_compare(args) -> int:
    """Run one workload under all three schedulers and compare."""
    machine = _machine(args)
    names = _benchmarks(args)
    if machine is None or names is None:
        return 2
    results = {
        scheduler: run_workload(
            machine, names, scheduler,
            instructions=args.instructions, seed=args.seed,
        )
        for scheduler in SCHEDULER_NAMES
    }
    print(comparison_summary(results))
    print()
    print("SSER (lower is better):")
    print(bar_chart({name: r.sser / results["random"].sser
                     for name, r in results.items()}))
    print("STP (higher is better):")
    print(bar_chart({name: r.stp / results["random"].stp
                     for name, r in results.items()}))
    return 0


def cmd_sweep(args) -> int:
    """Run the paper's 36-workload sweep on a machine."""
    machine = _machine(args)
    if machine is None:
        return 2
    workloads = generate_workloads(args.programs, seed=args.workload_seed)
    sinks = _sinks(args, args.verbose)
    try:
        results = sweep(machine, workloads, SCHEDULER_NAMES,
                        instructions=args.instructions,
                        jobs=_jobs(args), sinks=sinks,
                        checks=_checks(args),
                        metrics=getattr(args, "metrics", False),
                        store=getattr(args, "store", None),
                        batched=getattr(args, "batched", False))
    except CampaignError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        _close_sinks(sinks)
    if getattr(args, "modes", False):
        mode_results, sections, ok = _mode_sweep(
            machine, workloads, args.instructions,
            check=getattr(args, "check", False),
        )
        results["modes"] = mode_results
        print(sweep_summary(results))
        for section in sections:
            print()
            print(section)
        return 0 if ok else 1
    print(sweep_summary(results))
    return 0


def _mode_sweep(machine, workloads, instructions, check=False):
    """Run every workload under the (placement x protection-mode) search.

    Mode runs execute directly (the engine's RunSpec vocabulary stays
    placement-only) and return one result per workload so the sweep
    summary can normalize them against the same random baseline.
    Returns ``(results, sections, ok)`` where ``sections`` are the
    extra report blocks: aggregate mode usage, the mean per-component
    (core/L2/L3) SSER breakdown, and the mean SSER with protection
    applied.
    """
    from repro.ace.uncore import format_sser_breakdown, run_sser_breakdown
    from repro.metrics.reliability import SserBreakdown
    from repro.sched.modes import ModeAwareReliabilityScheduler, apply_modes
    from repro.sim.multicore import MulticoreSimulation

    results = []
    mode_quanta: dict[str, int] = {}
    breakdowns = []
    moded_ssers = []
    reports = []
    for index, mix in enumerate(workloads):
        profiles = [
            benchmark(name).scaled(instructions)
            for name in mix.benchmarks
        ]
        scheduler = ModeAwareReliabilityScheduler(machine, len(profiles))
        result = MulticoreSimulation(machine, profiles, scheduler).run()
        result.scheduler_name = "modes"
        schedule = scheduler.mode_schedule()
        outcome = apply_modes(result, schedule, machine.memory)
        for counts in schedule.quanta_by_app:
            for key, quanta in counts.items():
                mode_quanta[key] = mode_quanta.get(key, 0) + quanta
        breakdowns.append(run_sser_breakdown(result, machine.memory))
        moded_ssers.append(outcome.moded_sser)
        results.append(result)
        if check:
            from repro.check import check_mode_outcome, check_run

            label = f"{mix.category}/{index} modes"
            reports.append(check_run(result, label=label))
            reports.append(check_mode_outcome(
                outcome, result, schedule, machine.memory, label=label
            ))

    sections = []
    total = sum(mode_quanta.values())
    rows = [
        [key, quanta, float(100 * quanta / total)]
        for key, quanta in sorted(mode_quanta.items())
    ]
    sections.append(
        "protection-mode usage (app-quanta across the sweep):\n"
        + format_table(["mode", "quanta", "%"], rows,
                       float_format="{:.1f}")
    )
    count = len(breakdowns)
    mean = SserBreakdown(
        core_sser=sum(b.core_sser for b in breakdowns) / count,
        l2_sser=sum(b.l2_sser for b in breakdowns) / count,
        l3_sser=sum(b.l3_sser for b in breakdowns) / count,
    )
    sections.append(
        "per-component SSER, mean over mode runs (unprotected):\n"
        + format_sser_breakdown(mean)
    )
    sections.append(
        "mean SSER with protection applied: "
        f"{sum(moded_ssers) / count:.6e} "
        f"(unprotected chip mean {mean.chip_sser:.6e})"
    )
    ok = True
    if check:
        from repro.check import merge_reports

        report = merge_reports(reports, subject="modes")
        sections.append(report.format())
        ok = report.ok
    return results, sections, ok


def _campaign_stdout(specs, report) -> str:
    """The canonical stdout for a finished campaign.

    A scheduler sweep prints the same summary ``repro sweep`` would
    have; other campaign shapes get a per-job table.  Shared by
    ``repro resume`` and ``repro shard`` so every execution path's
    stdout is byte-identical for the same specs and results.
    """
    results = report.results
    if all(result is not None for result in results):
        by_scheduler: dict[str, list] = {}
        for spec, result in zip(specs, results):
            by_scheduler.setdefault(spec.scheduler, []).append(result)
        lengths = {len(v) for v in by_scheduler.values()}
        if "random" in by_scheduler and len(lengths) == 1:
            return sweep_summary(by_scheduler)
    # Failed jobs have no result, so a sweep summary cannot be built;
    # fall back to the per-job table (collect-mode campaigns).
    rows = [
        [o.index, o.label,
         ("failed" if o.error is not None
          else "cached" if o.cached else "executed"),
         float(o.wall_seconds)]
        for o in report.outcomes
    ]
    return format_table(["job", "label", "source", "wall s"], rows,
                        float_format="{:.3f}")


def cmd_resume(args) -> int:
    """Finish an interrupted campaign from its JSONL event log.

    The log's campaign-plan record supplies the specs, result store
    and engine settings; jobs the log records as completed are served
    from the store, pending and failed ones re-run.  Progress goes to
    stderr; the final summary (matching what the uninterrupted command
    would have printed) goes to stdout.
    """
    from repro.runtime import (
        ExecutionEngine,
        FailurePolicy,
        ResumeState,
        RetryPolicy,
    )

    try:
        state = ResumeState.load(args.path)
    except (OSError, ValueError) as error:
        print(f"error: cannot resume {args.path}: {error}", file=sys.stderr)
        return 2
    store = args.store or state.store
    if store is None:
        print(
            "error: the log's campaign ran without a result store, so "
            "its completed results were never persisted; pass --store "
            "DIR (everything will re-run into it)",
            file=sys.stderr,
        )
        return 2
    machine = ExecutionEngine.machine_from_descriptor(state.machine)
    print(f"resuming {args.path}: {state.summary()}", file=sys.stderr)

    # Resumed events append to the original log by default, so the log
    # stays the single source of truth (and remains resumable again).
    args.event_log = args.event_log or args.path

    # A log written by `repro shard` records its shard count in the
    # plan; resuming re-enters the sharded path unless --shards says
    # otherwise (--shards 1 forces a serial resume).
    shards = getattr(args, "shards", None) or state.shards or 1
    if shards > 1:
        from repro.runtime import ShardCoordinator

        live = [StderrProgressSink()] if args.verbose else []
        log_sink = JsonlEventSink(args.event_log)
        coordinator = ShardCoordinator(
            shards,
            failure_policy=FailurePolicy(state.failure_policy),
            max_attempts=state.max_attempts,
            checks=bool(_checks(args)),
            sinks=live,
            log_sink=log_sink,
        )
        try:
            report = coordinator.run(
                state.specs,
                machines=machine,
                labels=state.labels,
                store=store,
                resume_from=state,
            )
        except CampaignError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        finally:
            log_sink.close()
            _close_sinks(live)
    else:
        sinks = _sinks(args, args.verbose)
        engine = ExecutionEngine(
            jobs=_jobs(args),
            retry=RetryPolicy(max_attempts=state.max_attempts,
                              base_delay_seconds=0.0),
            failure_policy=FailurePolicy(state.failure_policy),
            timeout_seconds=state.timeout_seconds,
            sinks=sinks,
            checks=_checks(args),
        )
        try:
            report = engine.run_many(
                state.specs,
                machines=machine,
                labels=state.labels,
                store=store,
                resume_from=state,
            )
        except CampaignError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        finally:
            _close_sinks(sinks)
    if report.failures:
        for outcome in report.failures:
            print(f"failed: {outcome.label}: {outcome.error}",
                  file=sys.stderr)
        return 1

    print(_campaign_stdout(state.specs, report))
    print(f"\nresumed: {report.cache_hits} from store, "
          f"{report.executed} executed; store: {store}", file=sys.stderr)
    return 0


def cmd_shard(args) -> int:
    """Run the paper's sweep across N shard worker processes.

    The campaign plan is the exact one ``repro sweep`` runs (same
    specs, same order, via :func:`repro.sim.experiment.sweep_specs`);
    the shard coordinator partitions it by spec-key hash, drives one
    worker process per shard over the pipe protocol, and merges
    stores, logs and metrics back into one deterministic result.
    stdout is byte-identical across shard counts; fleet telemetry
    goes to stderr (and, with --status-socket, a live UNIX socket
    speaking the ``repro serve`` framing).
    """
    from repro.runtime import (
        FailurePolicy,
        FleetStatus,
        FleetStatusServer,
        InProcessShardTransport,
        ShardCoordinator,
        partition_indices,
    )
    from repro.sim.experiment import sweep_specs

    machine = _machine(args)
    if machine is None:
        return 2
    workloads = generate_workloads(args.programs, seed=args.workload_seed)
    specs, labels = sweep_specs(machine, workloads, SCHEDULER_NAMES,
                                instructions=args.instructions)

    try:
        fault_plan = _fault_plan(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    failure_policy = (FailurePolicy.COLLECT
                      if getattr(args, "failures", "fail-fast") == "collect"
                      else FailurePolicy.FAIL_FAST)
    live = [StderrProgressSink()] if args.verbose else []
    log_sink = (JsonlEventSink(args.event_log)
                if getattr(args, "event_log", None) else None)
    transport = (InProcessShardTransport
                 if args.transport == "inprocess" else None)
    owners = partition_indices([spec.key() for spec in specs], args.shards)
    fleet = FleetStatus([len(o) for o in owners])
    coordinator = ShardCoordinator(
        args.shards,
        transport_factory=transport,
        batched=getattr(args, "batched", False),
        metrics=getattr(args, "metrics", False),
        spans=getattr(args, "spans", False),
        checks=bool(_checks(args)),
        failure_policy=failure_policy,
        timeout_seconds=getattr(args, "timeout", None),
        fault_plan=fault_plan,
        sinks=live,
        log_sink=log_sink,
        shard_log_base=(args.event_log if args.shard_logs else None),
        status=fleet,
    )
    server = None
    if args.status_socket:
        server = FleetStatusServer(
            fleet, args.status_socket,
            metrics_source=coordinator.openmetrics,
        )
        server.start()
        print(f"fleet status on {args.status_socket}", file=sys.stderr)
    try:
        report = coordinator.run(
            specs,
            machines=machine,
            labels=labels,
            store=getattr(args, "store", None),
        )
    except CampaignError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if server is not None:
            server.close()
        if log_sink is not None:
            log_sink.close()
        _close_sinks(live)
    print(_campaign_stdout(specs, report))
    print(f"\n{fleet.format_line()}", file=sys.stderr)
    if report.failures:
        for outcome in report.failures:
            print(f"failed: {outcome.label}: {outcome.error}",
                  file=sys.stderr)
        if getattr(args, "store", None):
            print(f"postmortems: repro postmortem --list --store "
                  f"{args.store}", file=sys.stderr)
        return 1
    return 0


def _fault_plan(args):
    """Build a FaultPlan from the chaos-drill flags, or None."""
    from repro.runtime.engine import FaultPlan

    def parse_pairs(text, cast, flag):
        out = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            index, _, value = item.partition(":")
            try:
                out[int(index)] = cast(value)
            except ValueError:
                raise ValueError(
                    f"bad {flag} entry {item!r}; expected INDEX:VALUE"
                ) from None
        return out

    fail_attempts = (
        parse_pairs(args.inject_fail, int, "--inject-fail")
        if getattr(args, "inject_fail", None) else {}
    )
    sleep_seconds = (
        parse_pairs(args.inject_sleep, float, "--inject-sleep")
        if getattr(args, "inject_sleep", None) else {}
    )
    if not fail_attempts and not sleep_seconds:
        return None
    return FaultPlan(
        fail_attempts=fail_attempts, sleep_seconds=sleep_seconds
    )


def cmd_avf(args) -> int:
    """Print the suite's big-core AVF spectrum and classification."""
    classes = classify_benchmarks()
    avf = {name: big_core_avf(SUITE[name]) for name in BENCHMARK_NAMES}
    ordered = sorted(avf, key=avf.get)
    rows = [[name, classes[name], float(100 * avf[name])] for name in ordered]
    print(format_table(["benchmark", "class", "AVF %"], rows,
                       float_format="{:.1f}"))
    if args.chart:
        print()
        print(bar_chart({name: avf[name] for name in ordered},
                        value_format="{:.3f}"))
    return 0


def cmd_oracle(args) -> int:
    """Enumerate static schedules for a mix (Section 2.4's oracle)."""
    machine = _machine(args)
    names = _benchmarks(args)
    if machine is None or names is None:
        return 2
    if len(names) != machine.num_cores:
        print(f"error: {machine.name} needs {machine.num_cores} benchmarks",
              file=sys.stderr)
        return 2
    models = default_models(machine)
    stats = [
        isolated_stats(benchmark(n).scaled(args.instructions),
                       models["big"], models["small"])
        for n in names
    ]
    from repro.sched.oracle import enumerate_schedules
    rows = []
    for schedule in sorted(enumerate_schedules(stats, machine),
                           key=lambda s: s.sser):
        big_names = ",".join(names[i] for i in schedule.big_apps)
        rows.append([big_names, float(schedule.sser), float(schedule.stp)])
    print(format_table(["on big cores", "SSER (unscaled)", "STP"], rows,
                       float_format="{:.4g}"))
    best_r = best_sser_schedule(stats, machine)
    best_p = best_stp_schedule(stats, machine)
    print(f"\nreliability oracle: {[names[i] for i in best_r.big_apps]} on big")
    print(f"performance oracle: {[names[i] for i in best_p.big_apps]} on big")
    print(f"SER gain {100 * (1 - best_r.sser / best_p.sser):.1f}% at "
          f"STP loss {100 * (1 - best_r.stp / best_p.stp):.1f}%")
    return 0


def cmd_workloads(args) -> int:
    """List the canonical workload mixes for a program count."""
    workloads = generate_workloads(args.programs, seed=args.workload_seed)
    rows = [[i, w.category, ", ".join(w.benchmarks)]
            for i, w in enumerate(workloads)]
    print(format_table(["index", "category", "benchmarks"], rows))
    return 0


def cmd_trace(args) -> int:
    """Generate a synthetic trace and print its statistics."""
    if args.spans:
        return _show_spans(args.spans)
    if args.benchmark is None:
        print("error: benchmark argument required unless --spans is given",
              file=sys.stderr)
        return 2
    if args.benchmark not in SUITE:
        print(f"error: unknown benchmark {args.benchmark!r}", file=sys.stderr)
        return 2
    trace = generate_trace(benchmark(args.benchmark), args.length,
                           seed=args.seed)
    from repro.isa.instruction import InstructionClass
    rows = [[cls.name.lower(), float(100 * trace.class_fraction(cls))]
            for cls in InstructionClass
            if trace.class_fraction(cls) > 0]
    print(f"trace: {args.benchmark}, {len(trace)} instructions")
    print(f"branch MPKI {trace.branch_mpki:.2f}, "
          f"I-cache MPKI {trace.icache_mpki:.2f}")
    print(format_table(["class", "%"], rows, float_format="{:.1f}"))
    if args.simulate:
        from repro.cores.base import ISOLATED
        from repro.cores.inorder import InOrderCoreModel
        from repro.cores.ooo import OutOfOrderCoreModel
        from repro.cores.tracebase import TraceApplication
        big = OutOfOrderCoreModel(big_core_config())
        small = InOrderCoreModel(small_core_config())
        rows = []
        for label, model in (("big", big), ("small", small)):
            app = TraceApplication(trace)
            result = model.run_cycles(app, 0, 10 * len(trace), ISOLATED)
            rows.append([label, float(result.ipc),
                         float(100 * result.avf(model.core)),
                         float(result.ace_bits_per_cycle())])
        print(format_table(["core", "IPC", "AVF %", "ACE bits/cycle"], rows,
                           float_format="{:.2f}"))
    return 0


def _show_spans(path: str) -> int:
    """Render a saved span tree (from ``repro run --obs-out``)."""
    import json

    from repro.obs.tracing import SpanNode, format_tree, top_self_time

    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot load {path}: {error}", file=sys.stderr)
        return 2
    if "spans" in data and "name" not in data:
        data = data["spans"]  # an --obs-out dump; unwrap the span tree
    root = SpanNode.from_dict(data)
    print(format_tree(root))
    print("\ntop self time:")
    rows = [
        [label, count, float(total * 1e3), float(self_s * 1e3)]
        for label, count, total, self_s in top_self_time(root)
    ]
    print(format_table(["span", "count", "total ms", "self ms"], rows,
                       float_format="{:.3f}"))
    return 0


def cmd_figure(args) -> int:
    """Render an evaluation figure as an ASCII chart."""
    machine = _machine(args)
    if machine is None:
        return 2
    from pathlib import Path

    from repro.report.figures import render_fig06, render_fig07, render_fig12
    from repro.runtime import ExecutionEngine
    from repro.sim.campaign import Campaign

    workloads = generate_workloads(args.programs)
    campaign = Campaign(Path(args.cache_dir))
    sinks = _sinks(args, getattr(args, "verbose", False))
    engine = ExecutionEngine(jobs=_jobs(args), sinks=sinks,
                             checks=_checks(args),
                             metrics=getattr(args, "metrics", False))
    try:
        results = campaign.sweep(
            args.machine,
            workloads,
            SCHEDULER_NAMES,
            args.instructions,
            engine=engine,
        )
    except CampaignError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        _close_sinks(sinks)
    if args.id == "fig06":
        print(render_fig06(results))
    elif args.id == "fig07":
        print(render_fig07(results, workloads))
    elif args.id == "fig12":
        print(render_fig12(results, machine))
    else:
        print(f"error: unknown figure {args.id!r}", file=sys.stderr)
        return 2
    print(f"\n({campaign.hits} cached runs, {campaign.misses} simulated; "
          f"cache: {campaign.directory})")
    return 0


def cmd_inject(args) -> int:
    """Fault-injection campaign vs ACE counting for one benchmark."""
    if args.benchmark not in SUITE:
        print(f"error: unknown benchmark {args.benchmark!r}", file=sys.stderr)
        return 2
    from repro.ace.faultinject import FaultInjector
    from repro.cores.base import ISOLATED
    from repro.cores.ooo import OutOfOrderCoreModel
    from repro.cores.tracebase import TraceApplication

    config = big_core_config()
    model = OutOfOrderCoreModel(config)
    trace = generate_trace(benchmark(args.benchmark), args.length,
                           seed=args.seed)
    timing = model.simulate_window(
        TraceApplication(trace), 0, 100 * args.length, ISOLATED
    )
    injector = FaultInjector(config, timing)
    result = injector.inject(trials=args.trials, seed=args.seed)
    counting = injector.counting_avf()
    low, high = result.confidence_interval()
    print(f"benchmark {args.benchmark}: {timing.committed} instructions, "
          f"{timing.elapsed_cycles:.0f} cycles")
    print(f"ACE-counting AVF:     {100 * counting:.2f}%")
    print(f"fault-injection AVF:  {100 * result.avf_estimate:.2f}% "
          f"(95% CI [{100 * low:.2f}%, {100 * high:.2f}%], "
          f"{result.trials} injections)")
    rows = [
        [kind, trials, hits, float(100 * hits / trials) if trials else 0.0]
        for kind, (trials, hits) in result.per_structure.items()
    ]
    print(format_table(["structure", "trials", "ACE hits", "AVF %"], rows,
                       float_format="{:.1f}"))
    return 0


def cmd_events(args) -> int:
    """Replay one or more JSONL campaign event logs to per-job timings.

    Several logs (e.g. a shard fleet's per-shard logs) merge
    deterministically: events sort by virtual timestamp, then by the
    position of their log on the command line, so the merged view is
    canonical regardless of which shard finished first.
    """
    from repro.runtime import read_events_merged

    paths = list(args.path)
    try:
        timings = replay_timings(read_events_merged(paths))
    except (OSError, ValueError) as error:
        print(f"error: cannot replay {', '.join(paths)}: {error}",
              file=sys.stderr)
        return 2
    rows = [
        [t.index, t.label, t.status, t.attempts, float(t.wall_seconds)]
        for t in timings
    ]
    print(format_table(["job", "label", "status", "attempts", "wall s"],
                       rows, float_format="{:.3f}"))
    executed = [t for t in timings if t.status == "ok"]
    failed = sum(1 for t in timings if t.status == "failed")
    cached = sum(1 for t in timings if t.status == "cached")
    total_wall = sum(t.wall_seconds for t in executed)
    print(f"\n{len(timings)} jobs: {len(executed)} executed "
          f"({total_wall:.2f}s simulated wall time), "
          f"{cached} cached, {failed} failed")
    return 0 if failed == 0 else 1


def cmd_stats(args) -> int:
    """Aggregate MetricsSnapshot events from campaign event logs.

    Accepts several logs (a shard fleet's per-shard logs, several
    campaigns into one roll-up); they merge deterministically before
    aggregation, so the totals are order-independent.
    """
    from repro.obs import metrics as obs_metrics
    from repro.runtime.events import (
        MetricsSnapshot,
        SpanSnapshot,
        read_events_merged,
    )

    paths = list(args.path)
    try:
        events = read_events_merged(paths)
    except (OSError, ValueError) as error:
        print(f"error: cannot read {', '.join(paths)}: {error}",
              file=sys.stderr)
        return 2
    registry = obs_metrics.MetricsRegistry()
    snapshots = 0
    span_roots = []
    for event in events:
        if isinstance(event, MetricsSnapshot):
            registry.merge(event.metrics)
            snapshots += 1
        elif isinstance(event, SpanSnapshot) and event.spans:
            span_roots.append(event.spans)
    if snapshots == 0 and not (getattr(args, "spans", False) and span_roots):
        print(f"error: no metrics snapshots in {', '.join(paths)} "
              "(run the campaign with --metrics)", file=sys.stderr)
        return 1
    merged = registry.snapshot()
    if getattr(args, "openmetrics", False):
        from repro.obs import openmetrics as obs_openmetrics

        # Deterministic exposition: byte-identical between a merged
        # fleet log and its per-shard logs (no paths, no wall clock).
        print(obs_openmetrics.render_snapshot(merged), end="")
    else:
        print(format_table(["series", "kind", "count", "total", "mean"],
                           merged.rows()))
        print(f"\n{snapshots} snapshot(s) aggregated from "
              f"{', '.join(paths)}")
    if getattr(args, "spans", False):
        from repro.obs.tracing import SpanNode, format_tree, merge_trees

        forest = merge_trees(SpanNode.from_dict(r) for r in span_roots)
        print(f"\nfleet span forest "
              f"({len(span_roots)} span snapshot(s)):")
        print(format_tree(forest))
    if args.csv:
        obs_metrics.write_csv(merged, args.csv)
        print(f"wrote {args.csv}")
    return 0


def cmd_explain(args) -> int:
    """Record, render and validate a scheduler decision trace."""
    import json

    from repro.check import check_decision_trace
    from repro.obs.decisions import (
        DECISION_TRACE_SCHEMA,
        DecisionTraceRecorder,
        ReplayError,
        format_trace,
        read_trace,
        replay_trace,
        write_trace,
    )

    if args.schema:
        print(json.dumps(DECISION_TRACE_SCHEMA, indent=2, sort_keys=True))
        return 0

    if args.replay:
        try:
            records = read_trace(args.replay)
        except (OSError, ValueError) as error:
            print(f"error: cannot read {args.replay}: {error}",
                  file=sys.stderr)
            return 2
        label = args.replay
    else:
        machine = _machine(args)
        names = _benchmarks(args)
        if machine is None or names is None:
            return 2
        # The mode-aware scheduler runs under-committed machines (a
        # spare small core becomes a DMR checker slot); every other
        # scheduler needs one app per core.
        if args.scheduler == "modes":
            if not 0 < len(names) <= machine.num_cores:
                print(f"error: {machine.name} takes at most "
                      f"{machine.num_cores} benchmarks", file=sys.stderr)
                return 2
        elif len(names) != machine.num_cores:
            print(f"error: {machine.name} needs {machine.num_cores} "
                  f"benchmarks", file=sys.stderr)
            return 2
        from repro.sim.multicore import MulticoreSimulation

        profiles = [benchmark(n).scaled(args.instructions) for n in names]
        if args.scheduler == "constrained":
            from repro.sched.constrained import (
                ConstrainedReliabilityScheduler,
            )

            scheduler = ConstrainedReliabilityScheduler(
                machine, len(profiles), max_stp_loss=args.max_stp_loss
            )
        else:
            scheduler = make_scheduler(
                args.scheduler, machine, len(profiles), args.seed
            )
        recorder = DecisionTraceRecorder()
        scheduler.recorder = recorder
        MulticoreSimulation(machine, profiles, scheduler).run()
        records = recorder.records
        label = f"{machine.name}/{args.scheduler}/{'+'.join(names)}"
        if args.json:
            write_trace(records, args.json)
            print(f"wrote {len(records)} quantum records to {args.json}\n")

    if not records:
        print("error: decision trace is empty", file=sys.stderr)
        return 1
    print(format_trace(records, max_quanta=args.max_quanta))
    print()
    try:
        final = replay_trace(records)
        print(f"replayed final assignment: {final}")
    except ReplayError as error:
        print(f"error: trace does not replay: {error}", file=sys.stderr)
        return 1
    report = check_decision_trace(records, label=label)
    print(report.format())
    return 0 if report.ok else 1


def cmd_check(args) -> int:
    """Run the paper-invariant fuzzer and the golden regression corpus."""
    from pathlib import Path

    from repro.check import compare_goldens, fuzz, regenerate_goldens

    golden_dir = Path(args.golden_dir)
    if args.update_goldens:
        written = regenerate_goldens(golden_dir)
        for path in written:
            print(f"wrote {path}")
        return 0

    failed = False
    if not args.skip_fuzz:
        report = fuzz(
            args.seed,
            model_cases=args.model_cases,
            run_cases=args.run_cases,
            stack_cases=args.stack_cases,
            kernel_cases=args.kernel_cases,
            decision_cases=args.decision_cases,
            resume_cases=args.resume_cases,
            service_cases=args.service_cases,
            batch_cases=args.batch_cases,
            shard_cases=args.shard_cases,
            mode_cases=args.mode_cases,
        )
        print(report.format())
        failed = failed or not report.ok
    if not args.skip_goldens:
        if not args.skip_fuzz:
            print()
        report = compare_goldens(golden_dir)
        print(report.format())
        failed = failed or not report.ok
    return 1 if failed else 0


def cmd_bench(args) -> int:
    """Run the hot-path perf benchmarks and write BENCH_PERF.json."""
    from repro.kernels.bench import format_report, run_bench, write_report

    report = run_bench(quick=args.quick)
    print(format_report(report))
    path = write_report(report, args.output)
    print(f"\nwrote {path}")
    if args.min_ooo_speedup is not None:
        speedup = report["results"]["ooo_window"][
            "kernel_vs_reference_speedup"
        ]
        if speedup < args.min_ooo_speedup:
            print(
                f"error: OoO kernel speedup {speedup:.2f}x is below the "
                f"{args.min_ooo_speedup:.2f}x floor",
                file=sys.stderr,
            )
            return 1
    if args.max_disabled_overhead is not None:
        span_overhead = report["results"]["span_overhead"]
        for path_name, key in (
            ("OoO", "disabled_overhead"),
            ("in-order", "inorder_disabled_overhead"),
        ):
            overhead = span_overhead.get(key)
            if overhead is None:
                continue
            if overhead > args.max_disabled_overhead:
                print(
                    f"error: disabled-observability overhead on the "
                    f"{path_name} path ({100 * overhead:.2f}%) exceeds "
                    f"the {100 * args.max_disabled_overhead:.2f}% ceiling",
                    file=sys.stderr,
                )
                return 1
    if args.min_batch_speedup is not None:
        speedup = report["results"]["batch"]["batch_1024"][
            "speedup_vs_scalar"
        ]
        if speedup < args.min_batch_speedup:
            print(
                f"error: batched-sweep speedup {speedup:.2f}x at batch "
                f"size 1024 is below the {args.min_batch_speedup:.2f}x "
                f"floor",
                file=sys.stderr,
            )
            return 1
    if args.min_shard_speedup is not None:
        speedup = report["results"]["shard"]["shards_2"]["speedup_vs_1"]
        if speedup < args.min_shard_speedup:
            print(
                f"error: sharded-campaign speedup {speedup:.2f}x at 2 "
                f"shards is below the {args.min_shard_speedup:.2f}x "
                f"floor",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_cost(args) -> int:
    """Print the ACE counter architecture hardware cost (Section 4.2)."""
    big, small = big_core_config(), small_core_config()
    rows = []
    for label, cost in (
        ("baseline big-core", baseline_big_core_cost(big)),
        ("ROB-only big-core", rob_only_big_core_cost(big)),
        ("in-order core", in_order_core_cost(small)),
    ):
        rows.append([label, cost.storage_bits, cost.adders,
                     cost.bit_equivalents, cost.bytes])
    print(format_table(
        ["implementation", "storage bits", "adders", "bit-equiv", "bytes"],
        rows,
    ))
    return 0


def cmd_serve(args) -> int:
    """Serve the open-system scheduler over stdin/stdout or a socket."""
    import asyncio
    from contextlib import ExitStack
    from pathlib import Path

    from repro.service import (
        OpenSystem,
        SchedulerService,
        ServiceConfig,
        ServiceFeed,
    )

    machine = _machine(args)
    if machine is None:
        return 1
    config = ServiceConfig(
        machine=machine,
        scheduler=args.scheduler,
        admission=args.admission,
        queue_capacity=args.queue_limit,
        deadline_seconds=args.deadline,
    )
    with ExitStack() as stack:
        feed = None
        if args.event_feed:
            handle = stack.enter_context(open(args.event_feed, "a"))
            feed = ServiceFeed(stream=handle)
        system = OpenSystem(config, feed=feed)
        service = SchedulerService(
            system, default_instructions=args.instructions
        )
        if args.socket:
            socket_path = Path(args.socket)
            socket_path.unlink(missing_ok=True)
            stack.callback(socket_path.unlink, missing_ok=True)
            asyncio.run(service.serve_socket(args.socket))
        else:
            asyncio.run(service.serve_stdio())
    return 0


def cmd_load(args) -> int:
    """Drive seeded arrival streams and print the delay-vs-SSER table."""
    from contextlib import ExitStack

    from repro.check import check_service, merge_reports
    from repro.runtime.engine import ExecutionEngine
    from repro.service import (
        ServiceConfig,
        ServiceFeed,
        make_process,
        run_load_point,
        service_benchmark_pool,
    )
    from repro.service.load import format_load_table

    machine = _machine(args)
    if machine is None:
        return 1
    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError:
        print(f"error: bad --rates {args.rates!r}", file=sys.stderr)
        return 1
    if not rates:
        print("error: --rates names no arrival rates", file=sys.stderr)
        return 1

    config = ServiceConfig(
        machine=machine,
        scheduler=args.scheduler,
        admission=args.admission,
        queue_capacity=args.queue_limit,
        deadline_seconds=args.deadline,
    )
    benchmarks = service_benchmark_pool()
    jobs = _jobs(args)
    points = []
    reports = []
    feeds = []
    with ExitStack() as stack:
        handle = (
            stack.enter_context(open(args.event_feed, "a"))
            if args.event_feed
            else None
        )
        engine = None
        if jobs > 1:
            engine = ExecutionEngine(jobs=jobs)
            stack.callback(engine.close)
        for rate in rates:
            process = make_process(
                args.process,
                rate,
                benchmarks,
                seed=args.seed,
                instructions=args.instructions,
            )
            feed = ServiceFeed(stream=handle)
            point = run_load_point(
                config,
                process,
                args.arrivals,
                feed=feed,
                map_tasks=engine.map_tasks if engine is not None else None,
            )
            points.append(point)
            feeds.append(feed)
            reports.append(
                check_service(point.result, label=f"load@{rate:g}/s")
            )

    print(format_load_table(points))
    if getattr(args, "timeline", False):
        from repro.service.load import format_timeline, service_timeline

        for point, feed in zip(points, feeds):
            windows = service_timeline(
                feed.events,
                windows=getattr(args, "timeline_windows", 12),
            )
            print(f"\ntimeline @ {point.rate_per_second:g}/s:")
            print(format_timeline(windows))
    if args.digest:
        print()
        for point in points:
            print(
                f"feed sha256 @ {point.rate_per_second:g}/s: {point.digest}"
            )
    checked = merge_reports(reports, subject="load")
    if not checked.ok:
        print()
        print(checked.format())
        return 1
    if args.min_shed_rate is not None:
        peak = max(point.shed_rate for point in points)
        if peak < args.min_shed_rate:
            print(
                f"error: peak shed rate {peak:.3f} is below the "
                f"{args.min_shed_rate:.3f} floor",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_postmortem(args) -> int:
    """Render crash flight-recorder bundles from a result store."""
    import json

    from repro.obs import flight as obs_flight

    bundles = obs_flight.find_bundles(args.store)
    if args.list or args.key is None:
        if args.key is None and not args.list:
            print("error: pass a run key (or --list to enumerate)",
                  file=sys.stderr)
            return 2
        if not bundles:
            print(f"no postmortem bundles under {args.store}")
            return 0
        rows = []
        for path in bundles:
            bundle = obs_flight.load_bundle(path)
            trace = bundle.get("trace") or {}
            rows.append([
                bundle.get("key", path.stem)[:16],
                bundle.get("label", ""),
                bundle.get("reason", "?"),
                str(trace.get("shard", "-")),
            ])
        print(format_table(["key", "label", "reason", "shard"], rows))
        return 0
    matches = [p for p in bundles if p.stem.startswith(args.key)]
    if not matches:
        print(f"error: no bundle for key {args.key!r} under "
              f"{args.store} (try --list)", file=sys.stderr)
        return 1
    if len(matches) > 1:
        print(f"error: key prefix {args.key!r} is ambiguous "
              f"({len(matches)} bundles; try --list)", file=sys.stderr)
        return 1
    bundle = obs_flight.load_bundle(matches[0])
    if args.json:
        print(json.dumps(bundle, indent=2, sort_keys=True))
    else:
        print(obs_flight.format_bundle(bundle))
    return 0


def cmd_top(args) -> int:
    """Live fleet view polling a `repro shard --status-socket` socket."""
    import json
    import socket
    import time

    def query(op):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as client:
            client.connect(args.socket)
            with client.makefile("rw") as stream:
                stream.write(json.dumps({"op": op}) + "\n")
                stream.flush()
                line = stream.readline()
        if not line.strip():
            raise OSError("empty response")
        response = json.loads(line)
        if not response.get("ok"):
            raise OSError(response.get("error", "request failed"))
        return response

    def render(response):
        if args.openmetrics:
            return response["openmetrics"].rstrip("\n")
        fleet = response["fleet"]
        lines = [
            f"fleet {fleet['done']}/{fleet['total']} done  "
            f"{fleet['failed']} failed  {fleet['queued']} queued  "
            f"{fleet['cached']} cached  "
            f"{fleet['runs_per_s']:.1f} runs/s"
        ]
        eta = fleet.get("eta_seconds")
        lines.append(
            f"elapsed {fleet['elapsed_seconds']:.1f}s  eta "
            + (f"{eta:.0f}s" if eta is not None else "-")
        )
        rows = [
            [s["shard"], s["done"], s["total"], s["failed"], s["queued"],
             s["cached"],
             "done" if s["finished"]
             else "running" if s["started"] else "pending"]
            for s in fleet["shards"]
        ]
        lines.append(format_table(
            ["shard", "done", "total", "failed", "queued", "cached",
             "state"],
            rows,
        ))
        return "\n".join(lines)

    op = "metrics" if args.openmetrics else "fleet"
    try:
        if args.once:
            print(render(query(op)))
            return 0
        while True:
            print(render(query(op)))
            print()
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0
    except OSError as error:
        print(f"error: cannot poll {args.socket}: {error}",
              file=sys.stderr)
        return 1
