"""Set-associative cache with true-LRU replacement.

Used by the trace-driven core models to service instruction and data
accesses against real address streams.  Each set is a ``dict`` mapping
line tag to last-use clock: membership tests and LRU refreshes are
O(1), and victim selection is O(associativity) over a handful of ways.
This representation is an order of magnitude faster than per-access
numpy round-trips and behaves identically (hit/miss pattern, eviction
choice, statistics) to the previous numpy-backed implementation.

:meth:`SetAssociativeCache.access_batch` services a whole address
vector in one pass over pre-extracted index/tag buffers -- the batched
entry point the `repro.kernels` window kernels are built on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.machines import CacheLevelConfig


@dataclass
class CacheStats:
    """Access statistics of one cache instance."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.misses = 0


class SetAssociativeCache:
    """A single cache level with LRU replacement.

    Addresses are byte addresses; the cache works on line granularity.
    Writes are modelled allocate-on-write (write-back caches in the
    simulated hierarchy), so reads and writes behave identically for
    hit/miss purposes.
    """

    def __init__(self, config: CacheLevelConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._num_sets = config.num_sets
        self._ways = config.associativity
        # tag -> last-use clock; insertion never exceeds `_ways` keys.
        self._sets: list[dict[int, int]] = [
            {} for _ in range(self._num_sets)
        ]
        self._clock = 0
        self._line_shift = int(config.line_bytes).bit_length() - 1
        if (1 << self._line_shift) != config.line_bytes:
            raise ValueError("line size must be a power of two")

    def _index_tag(self, address: int) -> tuple[int, int]:
        line = address >> self._line_shift
        return line % self._num_sets, line // self._num_sets

    def access(self, address: int) -> bool:
        """Access a byte address; returns ``True`` on a hit.

        On a miss the line is filled, evicting the LRU way.
        """
        self._clock += 1
        self.stats.accesses += 1
        line = int(address) >> self._line_shift
        lru = self._sets[line % self._num_sets]
        tag = line // self._num_sets
        if tag in lru:
            lru[tag] = self._clock
            return True
        self.stats.misses += 1
        if len(lru) >= self._ways:
            del lru[min(lru, key=lru.__getitem__)]
        lru[tag] = self._clock
        return False

    def access_batch(self, addresses: np.ndarray) -> np.ndarray:
        """Access a vector of byte addresses in order; returns hit flags.

        Semantically identical to calling :meth:`access` once per
        address (same hit/miss pattern, LRU state and statistics), but
        the set-index/tag extraction is vectorized and the update loop
        runs over plain Python ints with no per-call overhead.
        """
        n = len(addresses)
        if n == 0:
            return np.zeros(0, dtype=bool)
        lines = np.asarray(addresses, dtype=np.int64) >> self._line_shift
        indices = (lines % self._num_sets).tolist()
        tags = (lines // self._num_sets).tolist()
        sets = self._sets
        ways = self._ways
        clock = self._clock
        hits = []
        append = hits.append
        missed = 0
        for index, tag in zip(indices, tags):
            clock += 1
            lru = sets[index]
            if tag in lru:
                lru[tag] = clock
                append(True)
                continue
            missed += 1
            if len(lru) >= ways:
                del lru[min(lru, key=lru.__getitem__)]
            lru[tag] = clock
            append(False)
        self._clock = clock
        self.stats.accesses += n
        self.stats.misses += missed
        return np.array(hits, dtype=bool)

    def contains(self, address: int) -> bool:
        """Whether the line holding an address is resident (no update)."""
        index, tag = self._index_tag(int(address))
        return tag in self._sets[index]

    def flush(self) -> None:
        """Invalidate every line (statistics are kept)."""
        for lru in self._sets:
            lru.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(lru) for lru in self._sets)
