"""Set-associative cache with true-LRU replacement.

Used by the trace-driven core models to service instruction and data
accesses against real address streams.  The implementation favours
clarity over raw speed but keeps per-access work O(associativity) with
numpy-backed tag/LRU state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.machines import CacheLevelConfig


@dataclass
class CacheStats:
    """Access statistics of one cache instance."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.misses = 0


class SetAssociativeCache:
    """A single cache level with LRU replacement.

    Addresses are byte addresses; the cache works on line granularity.
    Writes are modelled allocate-on-write (write-back caches in the
    simulated hierarchy), so reads and writes behave identically for
    hit/miss purposes.
    """

    def __init__(self, config: CacheLevelConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self.stats = CacheStats()
        sets = config.num_sets
        ways = config.associativity
        # tag == -1 means invalid.
        self._tags = np.full((sets, ways), -1, dtype=np.int64)
        self._lru = np.zeros((sets, ways), dtype=np.int64)
        self._clock = 0
        self._line_shift = int(config.line_bytes).bit_length() - 1
        if (1 << self._line_shift) != config.line_bytes:
            raise ValueError("line size must be a power of two")

    def _index_tag(self, address: int) -> tuple[int, int]:
        line = address >> self._line_shift
        return line % self.config.num_sets, line // self.config.num_sets

    def access(self, address: int) -> bool:
        """Access a byte address; returns ``True`` on a hit.

        On a miss the line is filled, evicting the LRU way.
        """
        self._clock += 1
        self.stats.accesses += 1
        index, tag = self._index_tag(int(address))
        ways = self._tags[index]
        hit = np.nonzero(ways == tag)[0]
        if hit.size:
            self._lru[index, hit[0]] = self._clock
            return True
        self.stats.misses += 1
        victim = int(np.argmin(self._lru[index]))
        self._tags[index, victim] = tag
        self._lru[index, victim] = self._clock
        return False

    def contains(self, address: int) -> bool:
        """Whether the line holding an address is resident (no update)."""
        index, tag = self._index_tag(int(address))
        return bool((self._tags[index] == tag).any())

    def flush(self) -> None:
        """Invalidate every line (statistics are kept)."""
        self._tags.fill(-1)
        self._lru.fill(0)

    @property
    def resident_lines(self) -> int:
        return int((self._tags >= 0).sum())
