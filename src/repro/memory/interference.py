"""Analytical shared-resource interference model.

Co-running applications interact through two shared resources
(Table 2): the 8 MB L3 cache and the 25.6 GB/s memory bus.  This
module converts per-application demand (L3 access rate, DRAM traffic)
into the :class:`~repro.cores.base.MemoryEnvironment` each application
sees:

* **LLC capacity contention** -- capacity is split in proportion to
  the square root of each application's L3 access rate (an
  approximation of the equilibrium an LRU cache reaches under
  competing reference streams); a smaller share raises the
  application's effective L3 miss rate via its ``cache_sensitivity``.
* **Bandwidth contention** -- total DRAM traffic against the bus
  capacity sets a queueing-delay multiplier on DRAM latency.

Demands depend on the environments (fewer cache hits mean more DRAM
traffic), so :meth:`InterferenceModel.solve` iterates to a fixed
point; a couple of iterations suffice in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.config.machines import MemoryConfig
from repro.cores.base import ISOLATED, MemoryEnvironment

#: Exponent applied to L3 demand when splitting capacity.
LLC_SHARE_EXPONENT = 0.5
#: Bus utilization above which queueing delay is clamped.
MAX_BUS_UTILIZATION = 0.90
#: Bytes transferred per DRAM access (one cache line).
LINE_BYTES = 64
#: Queueing-delay weight for the bandwidth model.
QUEUE_DELAY_WEIGHT = 0.5
#: Fixed-point iterations for demand <-> environment coupling.
SOLVE_ITERATIONS = 3


@dataclass(frozen=True)
class ApplicationDemand:
    """Shared-resource demand of one application over a quantum.

    Attributes:
        l3_accesses_per_second: L2 misses per second (LLC pressure).
        dram_accesses_per_second: L3 misses per second (bus traffic).
    """

    l3_accesses_per_second: float
    dram_accesses_per_second: float

    def __post_init__(self) -> None:
        if self.l3_accesses_per_second < 0 or self.dram_accesses_per_second < 0:
            raise ValueError("demands must be non-negative")


def llc_shares(
    demands: Sequence[float], exponent: float | None = None
) -> list[float]:
    """Split LLC capacity across applications by access demand.

    Returns one capacity fraction per application, summing to 1 (or
    each 1.0 when no application exerts demand).  Zero-demand
    applications receive a tiny floor share so their (rare) accesses
    still see a nonzero cache.  ``exponent`` defaults to the
    module-level :data:`LLC_SHARE_EXPONENT` (read at call time so
    sensitivity analyses can vary it).
    """
    if exponent is None:
        exponent = LLC_SHARE_EXPONENT
    if not demands:
        return []
    if any(d < 0 for d in demands):
        raise ValueError("demands must be non-negative")
    weights = [d**exponent for d in demands]
    total = sum(weights)
    if total <= 0:
        return [1.0] * len(demands)
    floor = 0.02 / len(demands)
    raw = [max(w / total, floor) for w in weights]
    norm = sum(raw)
    return [r / norm for r in raw]


def bandwidth_multiplier(
    total_bytes_per_second: float, capacity_bytes_per_second: float
) -> float:
    """DRAM latency multiplier under bus contention.

    A queueing-style delay: negligible at low utilization, growing as
    the bus saturates, clamped at :data:`MAX_BUS_UTILIZATION`.
    """
    if capacity_bytes_per_second <= 0:
        raise ValueError("bus capacity must be positive")
    if total_bytes_per_second < 0:
        raise ValueError("traffic must be non-negative")
    rho = min(total_bytes_per_second / capacity_bytes_per_second, MAX_BUS_UTILIZATION)
    return 1.0 + QUEUE_DELAY_WEIGHT * rho / (1.0 - rho)


class InterferenceModel:
    """Fixed-point solver for shared-resource environments."""

    def __init__(self, memory: MemoryConfig):
        self.memory = memory

    def environments(
        self, demands: Sequence[ApplicationDemand]
    ) -> list[MemoryEnvironment]:
        """Environments implied by a set of per-application demands."""
        if not demands:
            return []
        shares = llc_shares([d.l3_accesses_per_second for d in demands])
        traffic = sum(d.dram_accesses_per_second for d in demands) * LINE_BYTES
        multiplier = bandwidth_multiplier(
            traffic, self.memory.dram_bandwidth_gbps * 1e9
        )
        return [
            MemoryEnvironment(
                l3_share_fraction=share, dram_latency_multiplier=multiplier
            )
            for share in shares
        ]

    def solve(
        self,
        demand_of: Callable[[int, MemoryEnvironment], ApplicationDemand],
        count: int,
        iterations: int = SOLVE_ITERATIONS,
    ) -> list[MemoryEnvironment]:
        """Iterate demand -> environment -> demand to a fixed point.

        Args:
            demand_of: callback mapping (application index, candidate
                environment) to that application's demand under it.
            count: number of co-running applications.
            iterations: fixed-point iterations.
        """
        if count <= 0:
            return []
        envs = [ISOLATED] * count
        for _ in range(iterations):
            demands = [demand_of(i, envs[i]) for i in range(count)]
            envs = self.environments(demands)
        return envs
