"""Multi-level cache hierarchy for the trace-driven core models.

Each core owns private L1I/L1D/L2 caches; the L3 is shared between the
cores of one machine (pass the same :class:`SetAssociativeCache`
instance to several hierarchies to model sharing).  A data access
walks the levels and returns the load-to-use latency in cycles.

:meth:`CacheHierarchy.access_data_batch` walks a whole address vector
in one pass -- the batched entry point used by the `repro.kernels`
window kernels and the trace profiler.  The batch walk can record an
undo journal so a caller that over-ran a budget boundary (the window
kernels batch slightly past the committed prefix) can roll the cache
state and statistics back to an exact access prefix with
:meth:`CacheHierarchy.rollback_data`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.machines import MemoryConfig
from repro.memory.cache import SetAssociativeCache
from repro.obs import metrics as obs_metrics

#: Level codes returned by :meth:`CacheHierarchy.access_data_batch`.
LEVEL_L1, LEVEL_L2, LEVEL_L3, LEVEL_DRAM = 0, 1, 2, 3

#: Level code -> level name used by the scalar API.
LEVEL_NAMES = ("l1", "l2", "l3", "dram")


@dataclass
class AccessOutcome:
    """Result of one memory access.

    Attributes:
        latency_cycles: load-to-use latency in core cycles.
        level: the level that serviced the access
            (``"l1"``, ``"l2"``, ``"l3"`` or ``"dram"``).
    """

    latency_cycles: float
    level: str


class CacheHierarchy:
    """Private L1I/L1D/L2 in front of a (possibly shared) L3.

    Attributes:
        dram_accesses: number of accesses serviced by DRAM.
        l3_accesses: number of accesses reaching the L3 (L2 misses).
    """

    def __init__(
        self,
        memory: MemoryConfig,
        frequency_ghz: float,
        shared_l3: SetAssociativeCache | None = None,
    ):
        self.memory = memory
        self.frequency_ghz = frequency_ghz
        self.l1i = SetAssociativeCache(memory.l1i, "l1i")
        self.l1d = SetAssociativeCache(memory.l1d, "l1d")
        self.l2 = SetAssociativeCache(memory.l2, "l2")
        self.l3 = shared_l3 if shared_l3 is not None else SetAssociativeCache(
            memory.l3, "l3"
        )
        self.dram_accesses = 0
        self.l3_accesses = 0

    @property
    def dram_latency_cycles(self) -> float:
        return self.memory.dram_latency_cycles(self.frequency_ghz)

    def access_data(self, address: int) -> AccessOutcome:
        """Access the data path: L1D -> L2 -> L3 -> DRAM."""
        if self.l1d.access(address):
            return AccessOutcome(self.memory.l1d.latency_cycles, "l1")
        if self.l2.access(address):
            return AccessOutcome(
                self.memory.l1d.latency_cycles + self.memory.l2.latency_cycles, "l2"
            )
        self.l3_accesses += 1
        if self.l3.access(address):
            return AccessOutcome(
                self.memory.l1d.latency_cycles
                + self.memory.l2.latency_cycles
                + self.memory.l3.latency_cycles,
                "l3",
            )
        self.dram_accesses += 1
        return AccessOutcome(
            self.memory.l1d.latency_cycles
            + self.memory.l2.latency_cycles
            + self.memory.l3.latency_cycles
            + self.dram_latency_cycles,
            "dram",
        )

    def access_data_batch(
        self,
        addresses: np.ndarray,
        journal: list | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Walk the data path for a whole address vector in order.

        Semantically identical to calling :meth:`access_data` once per
        address: same hit/miss pattern, LRU state, statistics and
        latencies.  Set indices and tags for every level are extracted
        vectorized up front; the walk itself is one tight loop over
        plain Python ints with no per-call attribute lookups.

        Args:
            addresses: byte addresses of the accesses, in program
                order.
            journal: optional list; when given, one undo entry per
                access is appended so a suffix of the accesses can be
                undone with :meth:`rollback_data`.

        Returns:
            ``(latencies, levels)``: per-access load-to-use latency in
            cycles (float64) and servicing-level codes (int8:
            0=L1, 1=L2, 2=L3, 3=DRAM).
        """
        n = len(addresses)
        if n == 0:
            return np.zeros(0, dtype=np.float64), np.zeros(0, dtype=np.int8)
        memory = self.memory
        # Latency sums follow the exact association order of the
        # scalar path so results stay bit-identical.
        lat1 = memory.l1d.latency_cycles
        lat2 = memory.l1d.latency_cycles + memory.l2.latency_cycles
        lat3 = (
            memory.l1d.latency_cycles
            + memory.l2.latency_cycles
            + memory.l3.latency_cycles
        )
        lat4 = (
            memory.l1d.latency_cycles
            + memory.l2.latency_cycles
            + memory.l3.latency_cycles
            + self.dram_latency_cycles
        )
        l1, l2, l3 = self.l1d, self.l2, self.l3
        per_level = []
        for cache in (l1, l2, l3):
            lines = np.asarray(addresses, dtype=np.int64) >> cache._line_shift
            per_level.append((
                (lines % cache._num_sets).tolist(),
                (lines // cache._num_sets).tolist(),
            ))
        (idx1, tag1), (idx2, tag2), (idx3, tag3) = per_level
        sets1, sets2, sets3 = l1._sets, l2._sets, l3._sets
        ways1, ways2, ways3 = l1._ways, l2._ways, l3._ways
        clk1, clk2, clk3 = l1._clock, l2._clock, l3._clock
        acc2 = acc3 = 0
        miss1 = miss2 = miss3 = 0
        dram = 0
        latencies: list[float] = []
        levels: list[int] = []
        lat_append = latencies.append
        lev_append = levels.append
        record = journal.append if journal is not None else None
        for i in range(n):
            # -- L1D --
            clk1 += 1
            t = tag1[i]
            lru = sets1[idx1[i]]
            prev = lru.get(t)
            if prev is not None:
                lru[t] = clk1
                if record is not None:
                    record(((l1, lru, t, prev, None, 0),))
                lat_append(lat1)
                lev_append(0)
                continue
            miss1 += 1
            victim = victim_clock = None
            if len(lru) >= ways1:
                victim = min(lru, key=lru.__getitem__)
                victim_clock = lru.pop(victim)
            lru[t] = clk1
            if record is not None:
                records = ((l1, lru, t, None, victim, victim_clock),)
            # -- L2 --
            clk2 += 1
            acc2 += 1
            t = tag2[i]
            lru = sets2[idx2[i]]
            prev = lru.get(t)
            if prev is not None:
                lru[t] = clk2
                if record is not None:
                    record(records + ((l2, lru, t, prev, None, 0),))
                lat_append(lat2)
                lev_append(1)
                continue
            miss2 += 1
            victim = victim_clock = None
            if len(lru) >= ways2:
                victim = min(lru, key=lru.__getitem__)
                victim_clock = lru.pop(victim)
            lru[t] = clk2
            if record is not None:
                records = records + ((l2, lru, t, None, victim, victim_clock),)
            # -- L3 --
            clk3 += 1
            acc3 += 1
            t = tag3[i]
            lru = sets3[idx3[i]]
            prev = lru.get(t)
            if prev is not None:
                lru[t] = clk3
                if record is not None:
                    record(records + ((l3, lru, t, prev, None, 0),))
                lat_append(lat3)
                lev_append(2)
                continue
            miss3 += 1
            victim = victim_clock = None
            if len(lru) >= ways3:
                victim = min(lru, key=lru.__getitem__)
                victim_clock = lru.pop(victim)
            lru[t] = clk3
            if record is not None:
                record(records + ((l3, lru, t, None, victim, victim_clock),))
            dram += 1
            lat_append(lat4)
            lev_append(3)
        l1._clock = clk1
        l2._clock = clk2
        l3._clock = clk3
        l1.stats.accesses += n
        l1.stats.misses += miss1
        l2.stats.accesses += acc2
        l2.stats.misses += miss2
        l3.stats.accesses += acc3
        l3.stats.misses += miss3
        self.l3_accesses += acc3
        self.dram_accesses += dram
        reg = obs_metrics.ACTIVE
        if reg is not None:
            reg.counter("cache.accesses", level="l1").inc(n)
            reg.counter("cache.accesses", level="l2").inc(acc2)
            reg.counter("cache.accesses", level="l3").inc(acc3)
            reg.counter("cache.accesses", level="dram").inc(dram)
        return (
            np.array(latencies, dtype=np.float64),
            np.array(levels, dtype=np.int8),
        )

    def rollback_data(
        self, journal: list, levels: np.ndarray, keep: int
    ) -> None:
        """Undo all but the first ``keep`` accesses of a batch walk.

        ``journal`` and ``levels`` must come from one
        :meth:`access_data_batch` call.  After the rollback the cache
        state, statistics and hierarchy counters are exactly as if
        only the first ``keep`` addresses had been accessed.
        """
        for entry in reversed(journal[keep:]):
            for cache, lru, tag, prev, victim, victim_clock in reversed(entry):
                if prev is not None:
                    lru[tag] = prev
                else:
                    del lru[tag]
                    if victim is not None:
                        lru[victim] = victim_clock
                    cache.stats.misses -= 1
                cache._clock -= 1
                cache.stats.accesses -= 1
        for level in levels[keep:]:
            if level >= 2:
                self.l3_accesses -= 1
                if level == 3:
                    self.dram_accesses -= 1
        undone = levels[keep:]
        reg = obs_metrics.ACTIVE
        if reg is not None and len(undone):
            # access_data_batch already counted the rolled-back tail
            # in the observability registry; decrement so the metrics
            # agree with the cache statistics (levels: 0 = L1 hit,
            # 1 = L2, 2 = L3, 3 = DRAM -- an access touches every
            # level up to where it hit).
            reg.counter("cache.accesses", level="l1").inc(-len(undone))
            reg.counter("cache.accesses", level="l2").inc(
                -int((undone >= 1).sum())
            )
            reg.counter("cache.accesses", level="l3").inc(
                -int((undone >= 2).sum())
            )
            reg.counter("cache.accesses", level="dram").inc(
                -int((undone == 3).sum())
            )
        del journal[keep:]

    def access_instruction(self, address: int) -> AccessOutcome:
        """Access the instruction path: L1I -> L2 (-> L3 -> DRAM)."""
        if self.l1i.access(address):
            return AccessOutcome(0.0, "l1")  # hit latency hidden by pipelining
        if self.l2.access(address):
            return AccessOutcome(self.memory.l2.latency_cycles, "l2")
        self.l3_accesses += 1
        if self.l3.access(address):
            return AccessOutcome(
                self.memory.l2.latency_cycles + self.memory.l3.latency_cycles, "l3"
            )
        self.dram_accesses += 1
        return AccessOutcome(
            self.memory.l2.latency_cycles
            + self.memory.l3.latency_cycles
            + self.dram_latency_cycles,
            "dram",
        )

    def reset_stats(self) -> None:
        for cache in (self.l1i, self.l1d, self.l2, self.l3):
            cache.stats.reset()
        self.dram_accesses = 0
        self.l3_accesses = 0
