"""Multi-level cache hierarchy for the trace-driven core models.

Each core owns private L1I/L1D/L2 caches; the L3 is shared between the
cores of one machine (pass the same :class:`SetAssociativeCache`
instance to several hierarchies to model sharing).  A data access
walks the levels and returns the load-to-use latency in cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.machines import MemoryConfig
from repro.memory.cache import SetAssociativeCache


@dataclass
class AccessOutcome:
    """Result of one memory access.

    Attributes:
        latency_cycles: load-to-use latency in core cycles.
        level: the level that serviced the access
            (``"l1"``, ``"l2"``, ``"l3"`` or ``"dram"``).
    """

    latency_cycles: float
    level: str


class CacheHierarchy:
    """Private L1I/L1D/L2 in front of a (possibly shared) L3.

    Attributes:
        dram_accesses: number of accesses serviced by DRAM.
        l3_accesses: number of accesses reaching the L3 (L2 misses).
    """

    def __init__(
        self,
        memory: MemoryConfig,
        frequency_ghz: float,
        shared_l3: SetAssociativeCache | None = None,
    ):
        self.memory = memory
        self.frequency_ghz = frequency_ghz
        self.l1i = SetAssociativeCache(memory.l1i, "l1i")
        self.l1d = SetAssociativeCache(memory.l1d, "l1d")
        self.l2 = SetAssociativeCache(memory.l2, "l2")
        self.l3 = shared_l3 if shared_l3 is not None else SetAssociativeCache(
            memory.l3, "l3"
        )
        self.dram_accesses = 0
        self.l3_accesses = 0

    @property
    def dram_latency_cycles(self) -> float:
        return self.memory.dram_latency_cycles(self.frequency_ghz)

    def access_data(self, address: int) -> AccessOutcome:
        """Access the data path: L1D -> L2 -> L3 -> DRAM."""
        if self.l1d.access(address):
            return AccessOutcome(self.memory.l1d.latency_cycles, "l1")
        if self.l2.access(address):
            return AccessOutcome(
                self.memory.l1d.latency_cycles + self.memory.l2.latency_cycles, "l2"
            )
        self.l3_accesses += 1
        if self.l3.access(address):
            return AccessOutcome(
                self.memory.l1d.latency_cycles
                + self.memory.l2.latency_cycles
                + self.memory.l3.latency_cycles,
                "l3",
            )
        self.dram_accesses += 1
        return AccessOutcome(
            self.memory.l1d.latency_cycles
            + self.memory.l2.latency_cycles
            + self.memory.l3.latency_cycles
            + self.dram_latency_cycles,
            "dram",
        )

    def access_instruction(self, address: int) -> AccessOutcome:
        """Access the instruction path: L1I -> L2 (-> L3 -> DRAM)."""
        if self.l1i.access(address):
            return AccessOutcome(0.0, "l1")  # hit latency hidden by pipelining
        if self.l2.access(address):
            return AccessOutcome(self.memory.l2.latency_cycles, "l2")
        self.l3_accesses += 1
        if self.l3.access(address):
            return AccessOutcome(
                self.memory.l2.latency_cycles + self.memory.l3.latency_cycles, "l3"
            )
        self.dram_accesses += 1
        return AccessOutcome(
            self.memory.l2.latency_cycles
            + self.memory.l3.latency_cycles
            + self.dram_latency_cycles,
            "dram",
        )

    def reset_stats(self) -> None:
        for cache in (self.l1i, self.l1d, self.l2, self.l3):
            cache.stats.reset()
        self.dram_accesses = 0
        self.l3_accesses = 0
