"""Cache and memory substrate: caches, hierarchy, interference."""

from repro.memory.cache import CacheStats, SetAssociativeCache
from repro.memory.hierarchy import AccessOutcome, CacheHierarchy
from repro.memory.interference import (
    ApplicationDemand,
    InterferenceModel,
    bandwidth_multiplier,
    llc_shares,
)

__all__ = [
    "AccessOutcome",
    "ApplicationDemand",
    "CacheHierarchy",
    "CacheStats",
    "InterferenceModel",
    "SetAssociativeCache",
    "bandwidth_multiplier",
    "llc_shares",
]
