"""Parallel, fault-tolerant execution engine for simulation campaigns.

The paper's evaluation is a large design-space sweep (36 workload
mixes x 3 schedulers x topologies/frequencies/sampling rates); every
run is independent, so the sweep parallelizes perfectly across CPU
cores.  :class:`ExecutionEngine` fans :class:`~repro.sim.campaign.RunSpec`
jobs out over a :class:`~concurrent.futures.ProcessPoolExecutor`,
retries transient worker failures with capped backoff, and narrates
progress through the structured event stream in
:mod:`repro.runtime.events`.

Guarantees:

* **Determinism** -- results are returned in submission order and are
  identical to serial execution (every run is seeded; workers ship
  results back through the same JSON codec used by the disk cache).
* **Fault tolerance** -- a job failure is retried per
  :class:`~repro.runtime.retry.RetryPolicy`; a permanent failure is
  surfaced as a :class:`~repro.runtime.events.JobFailed` event and
  handled per :class:`~repro.runtime.retry.FailurePolicy`, never as an
  unhandled traceback from a worker.  A broken worker pool degrades to
  in-process serial execution of the unfinished jobs, as does an
  environment where process spawning is unavailable.
* **Cache safety** -- cache entries are written atomically (temp file
  + ``os.replace``) so concurrent engines sharing a campaign
  directory never observe partial files; corrupt entries are treated
  as misses.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent import futures
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.ace.counters import AceCounterMode
from repro.config.machines import MachineConfig
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.runtime.events import (
    CampaignFinished,
    CampaignStarted,
    CheckFailed,
    Event,
    EventSink,
    JobCached,
    JobFailed,
    JobFinished,
    JobStarted,
    MetricsSnapshot,
)
from repro.runtime.retry import CampaignError, FailurePolicy, RetryPolicy
from repro.sim.campaign import RunSpec
from repro.sim.experiment import run_workload
from repro.sim.results import RunResult
from repro.sim.serialize import (
    ResultCacheError,
    load_run,
    run_result_from_dict,
    run_result_to_dict,
    save_run,
)


def default_jobs() -> int:
    """Worker-process count from ``REPRO_JOBS`` (default 1 = serial)."""
    value = os.environ.get("REPRO_JOBS", "").strip()
    try:
        return max(1, int(value)) if value else 1
    except ValueError:
        warnings.warn(f"ignoring invalid REPRO_JOBS={value!r}")
        return 1


class InjectedFault(RuntimeError):
    """Failure raised by the engine's fault-injection hook."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection, for tests and chaos drills.

    The plan travels to the workers with each job (it must stay
    picklable), keyed by job index:

    Attributes:
        fail_attempts: job index -> number of leading attempts that
            raise :class:`InjectedFault` (a value >= the retry
            policy's ``max_attempts`` makes the job fail permanently).
        sleep_seconds: job index -> delay injected before every
            attempt (exercises timeouts and completion reordering).
    """

    fail_attempts: dict[int, int] = field(default_factory=dict)
    sleep_seconds: dict[int, float] = field(default_factory=dict)

    def apply(self, index: int, attempt: int) -> None:
        delay = self.sleep_seconds.get(index, 0.0)
        if delay > 0:
            time.sleep(delay)
        if attempt <= self.fail_attempts.get(index, 0):
            raise InjectedFault(
                f"injected fault (job {index}, attempt {attempt})"
            )


@dataclass(frozen=True)
class Job:
    """Picklable payload shipped to a worker process."""

    index: int
    spec: RunSpec
    label: str
    machine: MachineConfig | None = None
    cache_path: str | None = None


def _execute_job(
    job: Job,
    retry: RetryPolicy,
    fault_plan: FaultPlan | None,
    collect_metrics: bool = False,
) -> tuple[int, dict, int, float, dict | None]:
    """Worker entry point: run one spec with retry, return plain data.

    Returns ``(index, result_dict, attempts, wall_seconds, metrics)``;
    the result travels as the JSON-codec dict so the payload is
    trivially picklable and byte-identical to what the disk cache
    stores.  With ``collect_metrics``, the run executes under a fresh
    :class:`repro.obs.metrics.MetricsRegistry` (one per attempt, so a
    retried job reports only its successful attempt) and ``metrics``
    is its snapshot dict; otherwise ``None``.
    """
    started = time.perf_counter()
    # Configuration errors (e.g. an unknown machine tag) are not
    # transient: build the machine once, outside the retry loop.
    machine = job.machine if job.machine is not None else job.spec.build_machine()
    attempt = 0
    metrics_data: dict | None = None
    while True:
        attempt += 1
        try:
            if fault_plan is not None:
                fault_plan.apply(job.index, attempt)
            if collect_metrics:
                with obs_metrics.collecting() as registry:
                    with registry.timer("runtime.job_seconds"):
                        result = _run_spec(machine, job.spec)
                metrics_data = registry.snapshot().to_dict()
            else:
                result = _run_spec(machine, job.spec)
            break
        except Exception:
            if attempt >= retry.max_attempts:
                raise
            time.sleep(retry.delay(attempt))
    if job.cache_path is not None:
        save_run(result, job.cache_path)
    wall = time.perf_counter() - started
    return job.index, run_result_to_dict(result), attempt, wall, metrics_data


def _run_spec(machine: MachineConfig, spec: RunSpec) -> RunResult:
    return run_workload(
        machine,
        spec.benchmarks,
        spec.scheduler,
        instructions=spec.instructions,
        seed=spec.seed,
        counter_mode=AceCounterMode(spec.counter_mode),
    )


@dataclass
class JobOutcome:
    """Terminal state of one job."""

    index: int
    spec: RunSpec
    label: str
    result: RunResult | None = None
    error: str | None = None
    attempts: int = 0
    wall_seconds: float = 0.0
    cached: bool = False
    #: repro.obs metrics snapshot dict shipped back from the worker
    #: (engine ``metrics=True`` only; always ``None`` for cached jobs).
    metrics: dict | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class ExecutionReport:
    """Everything the engine knows after a batch completes."""

    outcomes: list[JobOutcome]
    wall_seconds: float = 0.0
    #: Campaign-wide merged metrics (engine ``metrics=True`` only).
    metrics: "obs_metrics.RegistrySnapshot | None" = None

    @property
    def results(self) -> list[RunResult | None]:
        """Results in submission order (``None`` for failed jobs)."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.error is not None]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self) -> "ExecutionReport":
        if self.failures:
            raise CampaignError(self)
        return self


class ExecutionEngine:
    """Fan :class:`RunSpec` jobs out across worker processes.

    Args:
        jobs: worker-process count; ``1`` runs everything in-process
            (no pool), which is also the graceful-degradation path
            when process spawning is unavailable.
        retry: per-job :class:`RetryPolicy` (applied inside workers).
        failure_policy: what a permanent job failure means for the
            batch (abort vs. collect partial results).
        timeout_seconds: per-job wall-clock budget, measured from
            submission to the pool; enforced in parallel mode (an
            in-process job cannot be preempted).  Timed-out jobs fail
            without retry.
        sinks: event sinks receiving the progress stream.
        fault_plan: optional deterministic fault injection hook.
        checks: opt-in per-job result checker -- a callable mapping a
            :class:`RunResult` to a
            :class:`~repro.check.invariants.CheckReport` (use
            :func:`repro.check.default_run_checks` for the standard
            invariant set).  A result violating an error-severity
            invariant emits a :class:`CheckFailed` event and the job
            is treated as failed (so ``FAIL_FAST`` aborts on it and
            ``COLLECT`` keeps sibling jobs running).  Checks run in
            the parent process, on cached and executed results alike.
        metrics: collect a :mod:`repro.obs.metrics` registry inside
            every executed job (worker or in-process), emit each
            snapshot as a :class:`MetricsSnapshot` event, and merge
            them into ``ExecutionReport.metrics``.  Snapshots merge
            commutatively, so serial and parallel campaigns produce
            identical totals.  Cached jobs execute nothing and
            contribute no metrics.
    """

    #: Factory for the worker pool; replaceable in tests to simulate
    #: environments without process support.
    _executor_factory = staticmethod(futures.ProcessPoolExecutor)

    #: Poll interval for the harvest loop when timeouts are armed.
    _POLL_SECONDS = 0.05

    def __init__(
        self,
        jobs: int = 1,
        *,
        retry: RetryPolicy | None = None,
        failure_policy: FailurePolicy = FailurePolicy.FAIL_FAST,
        timeout_seconds: float | None = None,
        sinks: Sequence[EventSink] = (),
        fault_plan: FaultPlan | None = None,
        checks=None,
        metrics: bool = False,
    ):
        self.jobs = max(1, int(jobs))
        self.retry = retry if retry is not None else RetryPolicy()
        self.failure_policy = failure_policy
        self.timeout_seconds = timeout_seconds
        self.sinks = list(sinks)
        self.fault_plan = fault_plan
        self.checks = checks
        self.metrics = bool(metrics)

    # -- events ------------------------------------------------------

    def _emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    # -- public API --------------------------------------------------

    def run_many(
        self,
        specs: Sequence[RunSpec],
        *,
        machines: MachineConfig | Sequence[MachineConfig | None] | None = None,
        cache_paths: Sequence[str | Path | None] | None = None,
        labels: Sequence[str] | None = None,
    ) -> ExecutionReport:
        """Execute a batch of specs; results come back in spec order.

        Args:
            specs: the runs to execute.
            machines: optional machine override -- a single
                :class:`MachineConfig` applied to every spec, or one
                per spec (``None`` entries fall back to
                ``spec.build_machine()``).  Required when
                ``spec.machine`` is a custom tag rather than a
                standard topology name.
            cache_paths: optional per-spec result-cache paths;
                existing valid entries are served without executing,
                and executed results are written back atomically.
            labels: optional per-spec display labels for events.
        """
        jobs_list = self._build_jobs(specs, machines, cache_paths, labels)
        started = time.perf_counter()
        self._emit(CampaignStarted(total=len(jobs_list)))

        outcomes: dict[int, JobOutcome] = {}
        to_run = []
        for job in jobs_list:
            cached = self._load_cached(job)
            if cached is None:
                to_run.append(job)
                continue
            error = self._check_result(job, cached.result)
            if error is not None:
                self._record_failure(
                    job, error, 0, cached.wall_seconds, outcomes
                )
                continue
            outcomes[job.index] = cached
            self._emit(
                JobCached(
                    index=job.index,
                    label=job.label,
                    wall_seconds=cached.wall_seconds,
                )
            )

        cached_failure = any(
            outcomes[i].error is not None for i in outcomes
        )
        if (
            cached_failure
            and self.failure_policy is FailurePolicy.FAIL_FAST
        ):
            for job in to_run:
                self._record_failure(
                    job, "skipped (fail-fast abort)", 0, 0.0, outcomes
                )
        elif to_run:
            if self.jobs == 1 or len(to_run) == 1:
                self._run_serial(to_run, outcomes)
            else:
                self._run_parallel(to_run, outcomes)

        report = ExecutionReport(
            outcomes=[outcomes[i] for i in sorted(outcomes)],
            wall_seconds=time.perf_counter() - started,
        )
        if self.metrics:
            merged = obs_metrics.MetricsRegistry()
            for outcome in report.outcomes:
                if outcome.metrics is not None:
                    merged.merge(outcome.metrics)
            report.metrics = merged.snapshot()
        self._emit(
            CampaignFinished(
                total=len(report.outcomes),
                completed=sum(1 for o in report.outcomes if o.ok),
                cached=report.cache_hits,
                failed=len(report.failures),
                wall_seconds=report.wall_seconds,
            )
        )
        if self.failure_policy is FailurePolicy.FAIL_FAST:
            report.raise_on_failure()
        return report

    # -- batch assembly ----------------------------------------------

    def _build_jobs(self, specs, machines, cache_paths, labels) -> list[Job]:
        count = len(specs)
        if machines is None or isinstance(machines, MachineConfig):
            machines = [machines] * count
        if cache_paths is None:
            cache_paths = [None] * count
        if labels is None:
            labels = [self._default_label(spec) for spec in specs]
        if not (len(machines) == len(cache_paths) == len(labels) == count):
            raise ValueError(
                "specs, machines, cache_paths and labels must align"
            )
        return [
            Job(
                index=index,
                spec=spec,
                label=label,
                machine=machine,
                cache_path=str(path) if path is not None else None,
            )
            for index, (spec, machine, path, label) in enumerate(
                zip(specs, machines, cache_paths, labels)
            )
        ]

    @staticmethod
    def _default_label(spec: RunSpec) -> str:
        mix = "+".join(spec.benchmarks)
        return f"{spec.machine}/{spec.scheduler}/{mix}#{spec.seed}"

    def _load_cached(self, job: Job) -> JobOutcome | None:
        if job.cache_path is None:
            return None
        path = Path(job.cache_path)
        if not path.exists():
            return None
        started = time.perf_counter()
        try:
            result = load_run(path)
        except ResultCacheError:
            return None  # corrupt or partial entry: recompute
        return JobOutcome(
            index=job.index,
            spec=job.spec,
            label=job.label,
            result=result,
            attempts=0,
            wall_seconds=time.perf_counter() - started,
            cached=True,
        )

    # -- outcome recording -------------------------------------------

    def _check_result(self, job: Job, result: RunResult) -> str | None:
        """Apply the opt-in check hook; an error string means failure."""
        if self.checks is None or result is None:
            return None
        report = self.checks(result)
        if report.ok:
            return None
        names = report.invariant_names()
        detail = "; ".join(v.format() for v in report.errors[:3])
        self._emit(
            CheckFailed(
                index=job.index,
                label=job.label,
                invariants=names,
                detail=detail,
            )
        )
        return f"check failed: violated {', '.join(names)}"

    def _record_success(
        self,
        job: Job,
        data: dict,
        attempts: int,
        wall: float,
        outcomes,
        metrics_data: dict | None = None,
    ) -> bool:
        """Record a completed job; ``False`` when its checks failed."""
        result = run_result_from_dict(data)
        error = self._check_result(job, result)
        if error is not None:
            self._record_failure(job, error, attempts, wall, outcomes)
            return False
        outcomes[job.index] = JobOutcome(
            index=job.index,
            spec=job.spec,
            label=job.label,
            result=result,
            attempts=attempts,
            wall_seconds=wall,
            metrics=metrics_data,
        )
        if metrics_data is not None:
            self._emit(
                MetricsSnapshot(
                    index=job.index,
                    label=job.label,
                    metrics=metrics_data,
                )
            )
        self._emit(
            JobFinished(
                index=job.index,
                label=job.label,
                wall_seconds=wall,
                attempts=attempts,
                sser=result.sser,
                stp=result.stp,
            )
        )
        return True

    def _record_failure(
        self, job: Job, error: str, attempts: int, wall: float, outcomes
    ) -> None:
        outcomes[job.index] = JobOutcome(
            index=job.index,
            spec=job.spec,
            label=job.label,
            error=error,
            attempts=attempts,
            wall_seconds=wall,
        )
        self._emit(
            JobFailed(
                index=job.index,
                label=job.label,
                error=error,
                attempts=attempts,
                wall_seconds=wall,
            )
        )

    # -- serial path -------------------------------------------------

    def _run_serial(self, jobs_list: Sequence[Job], outcomes: dict) -> None:
        aborted = False
        for job in jobs_list:
            if aborted:
                self._record_failure(
                    job, "skipped (fail-fast abort)", 0, 0.0, outcomes
                )
                continue
            self._emit(JobStarted(index=job.index, label=job.label))
            started = time.perf_counter()
            try:
                with obs_tracing.span("runtime.execute_job"):
                    _, data, attempts, wall, metrics_data = _execute_job(
                        job, self.retry, self.fault_plan, self.metrics
                    )
            except Exception as error:
                self._record_failure(
                    job,
                    f"{type(error).__name__}: {error}",
                    self.retry.max_attempts,
                    time.perf_counter() - started,
                    outcomes,
                )
                if self.failure_policy is FailurePolicy.FAIL_FAST:
                    aborted = True
                continue
            ok = self._record_success(
                job, data, attempts, wall, outcomes, metrics_data
            )
            if not ok and self.failure_policy is FailurePolicy.FAIL_FAST:
                aborted = True

    # -- parallel path -----------------------------------------------

    def _run_parallel(self, jobs_list: Sequence[Job], outcomes: dict) -> None:
        try:
            executor = self._executor_factory(
                max_workers=min(self.jobs, len(jobs_list))
            )
        except (NotImplementedError, OSError, ImportError) as error:
            warnings.warn(
                f"process pool unavailable ({error}); running serially"
            )
            self._run_serial(jobs_list, outcomes)
            return

        pending: dict[futures.Future, tuple[Job, float]] = {}
        try:
            for job in jobs_list:
                self._emit(JobStarted(index=job.index, label=job.label))
                future = executor.submit(
                    _execute_job, job, self.retry, self.fault_plan,
                    self.metrics,
                )
                pending[future] = (job, time.monotonic())
            self._harvest(pending, outcomes)
        except futures.process.BrokenProcessPool:
            remaining = [
                job
                for job, _ in pending.values()
                if job.index not in outcomes
            ]
            warnings.warn(
                f"worker pool broke; finishing {len(remaining)} "
                f"job(s) in-process"
            )
            self._run_serial(remaining, outcomes)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    def _harvest(self, pending: dict, outcomes: dict) -> None:
        poll = self._POLL_SECONDS if self.timeout_seconds is not None else None
        while pending:
            done, _ = futures.wait(
                pending, timeout=poll, return_when=futures.FIRST_COMPLETED
            )
            for future in done:
                job, _ = pending.pop(future)
                if future.cancelled():
                    self._record_failure(
                        job, "cancelled (fail-fast abort)", 0, 0.0, outcomes
                    )
                    continue
                try:
                    _, data, attempts, wall, metrics_data = future.result()
                except futures.process.BrokenProcessPool:
                    # Put the job back so the caller's serial-fallback
                    # path re-runs it alongside the other pending jobs.
                    pending[future] = (job, 0.0)
                    raise
                except Exception as error:
                    self._record_failure(
                        job,
                        f"{type(error).__name__}: {error}",
                        self.retry.max_attempts,
                        0.0,
                        outcomes,
                    )
                    if self.failure_policy is FailurePolicy.FAIL_FAST:
                        self._abort_pending(pending, outcomes)
                        return
                    continue
                ok = self._record_success(
                    job, data, attempts, wall, outcomes, metrics_data
                )
                if not ok and self.failure_policy is FailurePolicy.FAIL_FAST:
                    self._abort_pending(pending, outcomes)
                    return
            if self.timeout_seconds is not None:
                now = time.monotonic()
                for future in list(pending):
                    job, submitted = pending[future]
                    if now - submitted > self.timeout_seconds:
                        del pending[future]
                        future.cancel()
                        self._record_failure(
                            job,
                            f"timed out after {self.timeout_seconds:.1f}s",
                            1,
                            now - submitted,
                            outcomes,
                        )
                        if self.failure_policy is FailurePolicy.FAIL_FAST:
                            self._abort_pending(pending, outcomes)
                            return

    def _abort_pending(self, pending: dict, outcomes: dict) -> None:
        for future in list(pending):
            job, _ = pending.pop(future)
            future.cancel()
            self._record_failure(
                job, "cancelled (fail-fast abort)", 0, 0.0, outcomes
            )
