"""Parallel, fault-tolerant execution engine for simulation campaigns.

The paper's evaluation is a large design-space sweep (36 workload
mixes x 3 schedulers x topologies/frequencies/sampling rates); every
run is independent, so the sweep parallelizes perfectly across CPU
cores.  :class:`ExecutionEngine` fans :class:`~repro.sim.campaign.RunSpec`
jobs out over a :class:`~concurrent.futures.ProcessPoolExecutor`,
retries transient worker failures with capped backoff, and narrates
progress through the structured event stream in
:mod:`repro.runtime.events`.

Guarantees:

* **Determinism** -- results are returned in submission order and are
  identical to serial execution (every run is seeded; workers ship
  results back through the same JSON codec used by the disk cache).
* **Fault tolerance** -- a job failure is retried per
  :class:`~repro.runtime.retry.RetryPolicy`; a permanent failure is
  surfaced as a :class:`~repro.runtime.events.JobFailed` event and
  handled per :class:`~repro.runtime.retry.FailurePolicy`, never as an
  unhandled traceback from a worker.  A broken worker pool degrades to
  in-process serial execution of the unfinished jobs, as does an
  environment where process spawning is unavailable.
* **Cache safety** -- cache entries are written atomically (temp file
  + ``os.replace``) so concurrent engines sharing a campaign
  directory never observe partial files; corrupt entries are treated
  as misses.
* **Durability** -- with a :class:`~repro.runtime.store.ResultStore`
  (``store=``), completed results persist across crashes; the event
  log records the campaign plan and periodic checkpoints, and
  ``run_many(resume_from=...)`` (or ``repro resume``) finishes an
  interrupted campaign without re-running completed jobs.
"""

from __future__ import annotations

import dataclasses
import os
import time
import warnings
from concurrent import futures
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.ace.counters import AceCounterMode
from repro.config.machines import STANDARD_MACHINES, MachineConfig
from repro.obs import context as obs_context
from repro.obs import flight as obs_flight
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.runtime.events import (
    CampaignCheckpoint,
    CampaignFinished,
    CampaignPlan,
    CampaignStarted,
    CheckFailed,
    Event,
    EventSink,
    JobCached,
    JobFailed,
    JobFinished,
    JobReconciled,
    JobStarted,
    MetricsSnapshot,
    PostmortemWritten,
    SpanSnapshot,
    stamp_trace,
)
from repro.runtime.resume import ResumeState
from repro.runtime.retry import CampaignError, FailurePolicy, RetryPolicy
from repro.runtime.store import ResultStore
from repro.sim.campaign import RunSpec
from repro.sim.experiment import run_workload
from repro.sim.results import RunResult
from repro.sim.serialize import (
    ResultCacheError,
    load_run,
    run_result_from_dict,
    run_result_to_dict,
    save_run,
)


def default_jobs() -> int:
    """Worker-process count from ``REPRO_JOBS`` (default 1 = serial)."""
    value = os.environ.get("REPRO_JOBS", "").strip()
    try:
        return max(1, int(value)) if value else 1
    except ValueError:
        warnings.warn(f"ignoring invalid REPRO_JOBS={value!r}")
        return 1


class InjectedFault(RuntimeError):
    """Failure raised by the engine's fault-injection hook."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection, for tests and chaos drills.

    The plan travels to the workers with each job (it must stay
    picklable), keyed by job index:

    Attributes:
        fail_attempts: job index -> number of leading attempts that
            raise :class:`InjectedFault` (a value >= the retry
            policy's ``max_attempts`` makes the job fail permanently).
        sleep_seconds: job index -> delay injected before every
            attempt (exercises timeouts and completion reordering).
    """

    fail_attempts: dict[int, int] = field(default_factory=dict)
    sleep_seconds: dict[int, float] = field(default_factory=dict)

    def apply(self, index: int, attempt: int) -> None:
        delay = self.sleep_seconds.get(index, 0.0)
        if delay > 0:
            time.sleep(delay)
        if attempt <= self.fail_attempts.get(index, 0):
            raise InjectedFault(
                f"injected fault (job {index}, attempt {attempt})"
            )


@dataclass(frozen=True)
class Job:
    """Picklable payload shipped to a worker process."""

    index: int
    spec: RunSpec
    label: str
    machine: MachineConfig | None = None
    cache_path: str | None = None


def _execute_job(
    job: Job,
    retry: RetryPolicy,
    fault_plan: FaultPlan | None,
    collect_metrics: bool = False,
    collect_spans: bool = False,
) -> tuple[int, dict, int, float, dict | None, dict | None]:
    """Worker entry point: run one spec with retry, return plain data.

    Returns ``(index, result_dict, attempts, wall_seconds, metrics,
    spans)``; the result travels as the JSON-codec dict so the payload
    is trivially picklable and byte-identical to what the disk cache
    stores.  With ``collect_metrics``, the run executes under a fresh
    :class:`repro.obs.metrics.MetricsRegistry` (one per attempt, so a
    retried job reports only its successful attempt) and ``metrics``
    is its snapshot dict; with ``collect_spans``, likewise under a
    fresh :class:`repro.obs.tracing.SpanTracer` whose tree dict comes
    back as ``spans``; otherwise ``None``.
    """
    started = time.perf_counter()
    # Configuration errors (e.g. an unknown machine tag) are not
    # transient: build the machine once, outside the retry loop.
    machine = job.machine if job.machine is not None else job.spec.build_machine()
    attempt = 0
    metrics_data: dict | None = None
    spans_data: dict | None = None
    while True:
        attempt += 1
        try:
            if fault_plan is not None:
                fault_plan.apply(job.index, attempt)
            if collect_metrics or collect_spans:
                with ExitStack() as stack:
                    registry = (
                        stack.enter_context(obs_metrics.collecting())
                        if collect_metrics
                        else None
                    )
                    tracer = (
                        stack.enter_context(obs_tracing.collecting())
                        if collect_spans
                        else None
                    )
                    if registry is not None:
                        with registry.timer("runtime.job_seconds"):
                            result = _run_spec(machine, job.spec)
                    else:
                        result = _run_spec(machine, job.spec)
                if registry is not None:
                    metrics_data = registry.snapshot().to_dict()
                if tracer is not None:
                    spans_data = tracer.to_dict()
            else:
                result = _run_spec(machine, job.spec)
            break
        except Exception:
            if attempt >= retry.max_attempts:
                raise
            time.sleep(retry.delay(attempt))
    if job.cache_path is not None:
        save_run(result, job.cache_path)
    wall = time.perf_counter() - started
    return (
        job.index,
        run_result_to_dict(result),
        attempt,
        wall,
        metrics_data,
        spans_data,
    )


def _run_spec(machine: MachineConfig, spec: RunSpec) -> RunResult:
    return run_workload(
        machine,
        spec.benchmarks,
        spec.scheduler,
        instructions=spec.instructions,
        seed=spec.seed,
        counter_mode=AceCounterMode(spec.counter_mode),
    )


@dataclass
class JobOutcome:
    """Terminal state of one job."""

    index: int
    spec: RunSpec
    label: str
    result: RunResult | None = None
    error: str | None = None
    attempts: int = 0
    wall_seconds: float = 0.0
    cached: bool = False
    #: repro.obs metrics snapshot dict shipped back from the worker
    #: (engine ``metrics=True`` only; always ``None`` for cached jobs).
    metrics: dict | None = None
    #: repro.obs span tree dict shipped back from the worker (engine
    #: ``spans=True`` only; always ``None`` for cached jobs).
    spans: dict | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None

    def to_dict(self) -> dict:
        """JSON-serializable form (the shard protocol's wire format)."""
        return {
            "index": self.index,
            "spec": dataclasses.asdict(self.spec),
            "label": self.label,
            "result": (
                run_result_to_dict(self.result)
                if self.result is not None
                else None
            ),
            "error": self.error,
            "attempts": self.attempts,
            "wall_seconds": self.wall_seconds,
            "cached": self.cached,
            "metrics": self.metrics,
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobOutcome":
        """Inverse of :meth:`to_dict`."""
        result = data.get("result")
        return cls(
            index=int(data["index"]),
            spec=RunSpec.from_dict(data["spec"]),
            label=data["label"],
            result=(
                run_result_from_dict(result) if result is not None else None
            ),
            error=data.get("error"),
            attempts=int(data.get("attempts", 0)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            cached=bool(data.get("cached", False)),
            metrics=data.get("metrics"),
            spans=data.get("spans"),
        )


@dataclass
class ExecutionReport:
    """Everything the engine knows after a batch completes."""

    outcomes: list[JobOutcome]
    wall_seconds: float = 0.0
    #: Campaign-wide merged metrics (engine ``metrics=True`` only).
    metrics: "obs_metrics.RegistrySnapshot | None" = None
    #: Campaign-wide merged span forest (engine ``spans=True`` only).
    spans: "obs_tracing.SpanNode | None" = None

    @property
    def results(self) -> list[RunResult | None]:
        """Results in submission order (``None`` for failed jobs)."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.error is not None]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_on_failure(self) -> "ExecutionReport":
        if self.failures:
            raise CampaignError(self)
        return self


class ExecutionEngine:
    """Fan :class:`RunSpec` jobs out across worker processes.

    Args:
        jobs: worker-process count; ``1`` runs everything in-process
            (no pool), which is also the graceful-degradation path
            when process spawning is unavailable.
        retry: per-job :class:`RetryPolicy` (applied inside workers).
        failure_policy: what a permanent job failure means for the
            batch (abort vs. collect partial results).
        timeout_seconds: per-job wall-clock budget, measured from the
            moment the job *starts executing* on a worker -- queue
            wait while earlier jobs hold the workers does not count,
            so with ``jobs < len(specs)`` a job can never time out
            without having run.  Enforced in parallel mode (an
            in-process job cannot be preempted).  A timed-out job is
            recorded as failed with ``attempts=0`` (the attempt in
            flight was killed mid-run; with retries configured the
            true attempt number is unknowable from the parent).
            Because a running process-pool job cannot actually be
            cancelled, its worker keeps running; the late completion
            is reconciled explicitly (see :class:`JobReconciled` and
            ``orphan_grace_seconds``).
        orphan_grace_seconds: how long to keep waiting for timed-out
            jobs' workers after every other job finished, to
            reconcile their late results (``None`` = don't wait;
            still-running orphans are reported as abandoned).
        checkpoint_every: emit a :class:`CampaignCheckpoint` event
            after this many terminal job events (plus a final one),
            so a killed campaign's log can be resumed cheaply.
        sinks: event sinks receiving the progress stream.
        fault_plan: optional deterministic fault injection hook.
        checks: opt-in per-job result checker -- a callable mapping a
            :class:`RunResult` to a
            :class:`~repro.check.invariants.CheckReport` (use
            :func:`repro.check.default_run_checks` for the standard
            invariant set).  A result violating an error-severity
            invariant emits a :class:`CheckFailed` event and the job
            is treated as failed (so ``FAIL_FAST`` aborts on it and
            ``COLLECT`` keeps sibling jobs running).  Checks run in
            the parent process, on cached and executed results alike.
        metrics: collect a :mod:`repro.obs.metrics` registry inside
            every executed job (worker or in-process), emit each
            snapshot as a :class:`MetricsSnapshot` event, and merge
            them into ``ExecutionReport.metrics``.  Snapshots merge
            commutatively, so serial and parallel campaigns produce
            identical totals.  Cached jobs execute nothing and
            contribute no metrics.
        spans: collect a :mod:`repro.obs.tracing` span tree inside
            every executed job, emit each tree as a
            :class:`SpanSnapshot` event (how shard workers ship span
            trees home), and merge them into ``ExecutionReport.spans``
            via :func:`repro.obs.tracing.merge_trees`.
        flight: arm a :class:`repro.obs.flight.FlightRecorder` for the
            campaign when a result store is present.  The recorder
            rings the last ``flight_capacity`` emitted events; when a
            job fails, times out, or is abandoned as an orphan, a
            postmortem bundle is dumped under
            ``<store>/postmortems/<key>.json`` and a
            :class:`PostmortemWritten` event marks it.  ``False``
            disables the recorder entirely.
        flight_capacity: ring size of the armed flight recorder.

    The engine also mints (or inherits) a
    :class:`repro.obs.context.TraceContext` per campaign -- the
    campaign id is a stable digest of the planned run keys -- and
    stamps it, plus the per-job run key, onto every emitted event.
    """

    #: Factory for the worker pool; replaceable in tests to simulate
    #: environments without process support.
    _executor_factory = staticmethod(futures.ProcessPoolExecutor)

    #: Poll interval for the harvest loop when timeouts are armed.
    _POLL_SECONDS = 0.05

    def __init__(
        self,
        jobs: int = 1,
        *,
        retry: RetryPolicy | None = None,
        failure_policy: FailurePolicy = FailurePolicy.FAIL_FAST,
        timeout_seconds: float | None = None,
        orphan_grace_seconds: float | None = None,
        checkpoint_every: int = 10,
        sinks: Sequence[EventSink] = (),
        fault_plan: FaultPlan | None = None,
        checks=None,
        metrics: bool = False,
        spans: bool = False,
        flight: bool = True,
        flight_capacity: int = obs_flight.DEFAULT_CAPACITY,
    ):
        self.jobs = max(1, int(jobs))
        self.retry = retry if retry is not None else RetryPolicy()
        self.failure_policy = failure_policy
        self.timeout_seconds = timeout_seconds
        self.orphan_grace_seconds = orphan_grace_seconds
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.sinks = list(sinks)
        self.fault_plan = fault_plan
        self.checks = checks
        self.metrics = bool(metrics)
        self.spans = bool(spans)
        self.flight = bool(flight)
        self.flight_capacity = int(flight_capacity)
        # Per-run checkpoint bookkeeping (reset by run_many).
        self._run_keys: list[str] | None = None
        self._terminal_seen = 0
        # Per-run telemetry (armed/disarmed by run_many).
        self._trace: "obs_context.TraceContext | None" = None
        self._flight: "obs_flight.FlightRecorder | None" = None
        self._flight_store: Path | None = None
        self._flight_previous: "obs_flight.FlightRecorder | None" = None
        self._postmortem_keys: set[str] = set()
        # Submission-path queue metrics (queue.depth / queue.wait_seconds):
        # a fresh engine-side registry under metrics=True, else whatever
        # registry is ACTIVE in the parent process.
        self._queue_registry: "obs_metrics.MetricsRegistry | None" = None
        self._batch_started = 0.0
        # Lazy persistent pool for map_tasks (False = creation failed,
        # don't retry).
        self._map_executor = None

    # -- events ------------------------------------------------------

    def _emit(self, event: Event) -> None:
        trace = self._trace
        if trace is not None:
            data = trace.to_dict()
            keys = self._run_keys
            index = getattr(event, "index", None)
            if (
                keys is not None
                and isinstance(index, int)
                and 0 <= index < len(keys)
            ):
                data["run_key"] = keys[index]
            tracer = obs_tracing.ACTIVE
            if tracer is not None and len(tracer._stack) > 1:
                data["parent"] = tracer._stack[-1].label
            event = stamp_trace(event, data)
        flight = self._flight
        if flight is not None:
            flight.record(event.to_dict())
        for sink in self.sinks:
            sink.emit(event)

    # -- telemetry arming --------------------------------------------

    def _arm_telemetry(self, keys: Sequence[str], store) -> None:
        """Mint/inherit the campaign trace context; arm the recorder."""
        self._postmortem_keys = set()
        ambient = obs_context.current()
        self._trace = (
            ambient
            if ambient is not None
            else obs_context.TraceContext(
                campaign=obs_context.campaign_id(keys)
            )
        )
        if self.flight and store is not None:
            self._flight = obs_flight.FlightRecorder(
                self.flight_capacity,
                fingerprint={
                    "campaign": self._trace.campaign,
                    "failure_policy": self.failure_policy.value,
                    "jobs": self.jobs,
                    "max_attempts": self.retry.max_attempts,
                    "timeout_seconds": self.timeout_seconds,
                },
            )
            self._flight.mark_metrics_baseline()
            self._flight_store = store.directory
            # Install as the ambient recorder so in-process kernel
            # paths contribute window notes to the ring.
            self._flight_previous = obs_flight.ACTIVE
            obs_flight.enable(self._flight)

    def _disarm_telemetry(self) -> None:
        if self._flight is not None:
            if self._flight_previous is not None:
                obs_flight.enable(self._flight_previous)
            else:
                obs_flight.disable()
        self._trace = None
        self._flight = None
        self._flight_store = None
        self._flight_previous = None

    def _dump_postmortem(self, job: Job, reason: str, error: str) -> None:
        """Write a postmortem bundle for a dead job; emit its marker."""
        if self._flight is None or self._flight_store is None:
            return
        keys = self._run_keys
        key = (
            keys[job.index]
            if keys is not None and 0 <= job.index < len(keys)
            else job.spec.key()
        )
        # A timed-out orphan dies twice (timeout now, abandoned at
        # drain); the first bundle has the ring as it was at death, so
        # it wins.
        if key in self._postmortem_keys:
            return
        self._postmortem_keys.add(key)
        trace = self._trace.with_run(key) if self._trace else None
        path = obs_flight.dump_bundle(
            self._flight_store,
            key,
            label=job.label,
            reason=reason,
            error=error,
            trace=trace,
            recorder=self._flight,
        )
        self._emit(
            PostmortemWritten(
                index=job.index,
                label=job.label,
                key=key,
                reason=reason,
                path=str(path),
            )
        )

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
        if self._map_executor:
            self._map_executor.shutdown(wait=False, cancel_futures=True)
            self._map_executor = None

    # -- queue metrics ------------------------------------------------

    def _observe_queue(self, wait_seconds: float, depth: int) -> None:
        """One job left the submission queue and started executing."""
        reg = self._queue_registry
        if reg is None:
            return
        reg.timer("queue.wait_seconds").observe(wait_seconds)
        reg.gauge("queue.depth").set(float(depth))

    # -- ordered task mapping -----------------------------------------

    def _ensure_map_executor(self):
        if self._map_executor is None:
            try:
                self._map_executor = self._executor_factory(
                    max_workers=self.jobs
                )
            except (NotImplementedError, OSError, ImportError) as error:
                warnings.warn(
                    f"process pool unavailable ({error}); "
                    f"mapping in-process"
                )
                self._map_executor = False  # don't retry creation
        return self._map_executor or None

    def map_tasks(self, fn, items) -> list:
        """Ordered parallel map over picklable items (service slices).

        Results come back in item order, computed by the same function
        the serial path would call, so callers stay deterministic
        across worker counts.  The pool is created lazily, persists
        across calls (quantum-rate fan-out), and degrades to in-process
        execution when process support is unavailable or the pool
        breaks mid-map.
        """
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        executor = self._ensure_map_executor()
        if executor is None:
            return [fn(item) for item in items]
        try:
            return list(executor.map(fn, items))
        except futures.process.BrokenProcessPool:
            warnings.warn(
                "worker pool broke during map_tasks; running in-process"
            )
            self._map_executor = None
            return [fn(item) for item in items]

    # -- checkpoints -------------------------------------------------

    def _checkpoint_tick(self, outcomes: dict) -> None:
        """Count one terminal job event; emit a periodic checkpoint."""
        if self._run_keys is None:
            return
        self._terminal_seen += 1
        if self._terminal_seen % self.checkpoint_every == 0:
            self._emit_checkpoint(outcomes)

    def _emit_checkpoint(self, outcomes: dict) -> None:
        if self._run_keys is None:
            return
        keys = self._run_keys
        completed = sorted(
            keys[i] for i, o in outcomes.items() if o.ok
        )
        failed = sorted(
            keys[i] for i, o in outcomes.items() if o.error is not None
        )
        terminal = {keys[i] for i in outcomes}
        pending = sorted(k for k in keys if k not in terminal)
        self._emit(
            CampaignCheckpoint(
                completed=completed, failed=failed, pending=pending
            )
        )

    @staticmethod
    def _machine_descriptor(machines) -> dict | None:
        """Minimal plan descriptor of a single-machine override.

        Only overrides reconstructible from ``STANDARD_MACHINES`` (the
        standard topology, optionally with a small-core frequency
        change) are describable; anything else returns ``None`` and a
        resume falls back to ``spec.build_machine()``.
        """
        if not isinstance(machines, MachineConfig):
            return None
        factory = STANDARD_MACHINES.get(machines.name)
        if factory is None:
            return None
        reference = factory()
        if machines == reference:
            return {"name": machines.name}
        small_ghz = machines.small.frequency_ghz
        if machines == reference.with_small_frequency(small_ghz):
            return {
                "name": machines.name,
                "small_frequency_ghz": small_ghz,
            }
        return None

    @staticmethod
    def machine_from_descriptor(descriptor: dict | None) -> MachineConfig | None:
        """Rebuild a plan's machine override (inverse of the above)."""
        if descriptor is None:
            return None
        machine = STANDARD_MACHINES[descriptor["name"]]()
        small_ghz = descriptor.get("small_frequency_ghz")
        if small_ghz is not None:
            machine = machine.with_small_frequency(small_ghz)
        return machine

    # -- public API --------------------------------------------------

    def run_many(
        self,
        specs: Sequence[RunSpec],
        *,
        machines: MachineConfig | Sequence[MachineConfig | None] | None = None,
        cache_paths: Sequence[str | Path | None] | None = None,
        labels: Sequence[str] | None = None,
        store: "ResultStore | str | Path | None" = None,
        resume_from: "ResumeState | str | Path | None" = None,
    ) -> ExecutionReport:
        """Execute a batch of specs; results come back in spec order.

        Args:
            specs: the runs to execute.
            machines: optional machine override -- a single
                :class:`MachineConfig` applied to every spec, or one
                per spec (``None`` entries fall back to
                ``spec.build_machine()``).  Required when
                ``spec.machine`` is a custom tag rather than a
                standard topology name.
            cache_paths: optional per-spec result-cache paths;
                existing valid entries are served without executing,
                and executed results are written back atomically.
            store: optional :class:`~repro.runtime.store.ResultStore`
                (or its directory); shorthand for deriving
                ``cache_paths`` from each spec's content key, and
                recorded in the :class:`CampaignPlan` event so the
                campaign is resumable.
            resume_from: a :class:`~repro.runtime.resume.ResumeState`
                or the path of a prior run's JSONL event log.  Jobs
                the log records as completed are served from the
                result store without executing; pending and failed
                jobs re-run.  Falls back to the log's recorded store
                when ``store`` is not given.  The report is identical
                to an uninterrupted run's, except that resumed jobs
                surface as cache hits.
            labels: optional per-spec display labels for events.
        """
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        resume = resume_from
        if resume is not None and not isinstance(resume, ResumeState):
            resume = ResumeState.load(resume)
        if resume is not None:
            resume.check_specs(specs)
            if store is None and resume.store is not None:
                store = ResultStore(resume.store)
        if cache_paths is None and store is not None:
            cache_paths = [store.path_for(spec) for spec in specs]
        jobs_list = self._build_jobs(specs, machines, cache_paths, labels)
        keys = [spec.key() for spec in specs]
        self._run_keys = keys
        self._terminal_seen = 0
        self._queue_registry = (
            obs_metrics.MetricsRegistry()
            if self.metrics
            else obs_metrics.ACTIVE
        )
        self._arm_telemetry(keys, store)
        try:
            started = time.perf_counter()
            self._emit(CampaignStarted(total=len(jobs_list)))
            self._emit(
                CampaignPlan(
                    specs=[dataclasses.asdict(spec) for spec in specs],
                    keys=keys,
                    labels=[job.label for job in jobs_list],
                    store=str(store.directory) if store is not None else None,
                    machine=self._machine_descriptor(machines),
                    failure_policy=self.failure_policy.value,
                    timeout_seconds=self.timeout_seconds,
                    max_attempts=self.retry.max_attempts,
                )
            )

            outcomes: dict[int, JobOutcome] = {}
            to_run = []
            for job in jobs_list:
                cached = self._load_cached(job)
                if cached is None:
                    to_run.append(job)
                    continue
                error = self._check_result(job, cached.result)
                if error is not None:
                    self._record_failure(
                        job, error, 0, cached.wall_seconds, outcomes
                    )
                    continue
                outcomes[job.index] = cached
                self._emit(
                    JobCached(
                        index=job.index,
                        label=job.label,
                        wall_seconds=cached.wall_seconds,
                    )
                )
                self._checkpoint_tick(outcomes)

            cached_failure = any(
                outcomes[i].error is not None for i in outcomes
            )
            if (
                cached_failure
                and self.failure_policy is FailurePolicy.FAIL_FAST
            ):
                for job in to_run:
                    self._record_failure(
                        job, "skipped (fail-fast abort)", 0, 0.0, outcomes
                    )
            elif to_run:
                if self.jobs == 1 or len(to_run) == 1:
                    self._run_serial(to_run, outcomes)
                else:
                    self._run_parallel(to_run, outcomes)

            report = ExecutionReport(
                outcomes=[outcomes[i] for i in sorted(outcomes)],
                wall_seconds=time.perf_counter() - started,
            )
            if self.metrics:
                merged = obs_metrics.MetricsRegistry()
                for outcome in report.outcomes:
                    if outcome.metrics is not None:
                        merged.merge(outcome.metrics)
                engine_snapshot = self._queue_registry.snapshot()
                if engine_snapshot.series:
                    # Submission-path queueing metrics live in the parent,
                    # not in any worker; ship them as an index=-1 snapshot
                    # so replaying the event stream still reproduces the
                    # merged registry.
                    self._emit(
                        MetricsSnapshot(
                            index=-1,
                            label="engine",
                            metrics=engine_snapshot.to_dict(),
                        )
                    )
                    merged.merge(engine_snapshot)
                report.metrics = merged.snapshot()
            if self.spans:
                report.spans = obs_tracing.merge_trees(
                    obs_tracing.SpanNode.from_dict(o.spans)
                    for o in report.outcomes
                    if o.spans is not None
                )
            self._queue_registry = None
            self._emit_checkpoint(outcomes)
            self._run_keys = None
            self._emit(
                CampaignFinished(
                    total=len(report.outcomes),
                    completed=sum(1 for o in report.outcomes if o.ok),
                    cached=report.cache_hits,
                    failed=len(report.failures),
                    wall_seconds=report.wall_seconds,
                )
            )
        finally:
            self._disarm_telemetry()
        if self.failure_policy is FailurePolicy.FAIL_FAST:
            report.raise_on_failure()
        return report

    # -- batch assembly ----------------------------------------------

    def _build_jobs(self, specs, machines, cache_paths, labels) -> list[Job]:
        count = len(specs)
        if machines is None or isinstance(machines, MachineConfig):
            machines = [machines] * count
        if cache_paths is None:
            cache_paths = [None] * count
        if labels is None:
            labels = [self._default_label(spec) for spec in specs]
        if not (len(machines) == len(cache_paths) == len(labels) == count):
            raise ValueError(
                "specs, machines, cache_paths and labels must align"
            )
        return [
            Job(
                index=index,
                spec=spec,
                label=label,
                machine=machine,
                cache_path=str(path) if path is not None else None,
            )
            for index, (spec, machine, path, label) in enumerate(
                zip(specs, machines, cache_paths, labels)
            )
        ]

    @staticmethod
    def _default_label(spec: RunSpec) -> str:
        mix = "+".join(spec.benchmarks)
        return f"{spec.machine}/{spec.scheduler}/{mix}#{spec.seed}"

    def _load_cached(self, job: Job) -> JobOutcome | None:
        if job.cache_path is None:
            return None
        path = Path(job.cache_path)
        if not path.exists():
            return None
        started = time.perf_counter()
        try:
            result = load_run(path)
        except ResultCacheError:
            return None  # corrupt or partial entry: recompute
        return JobOutcome(
            index=job.index,
            spec=job.spec,
            label=job.label,
            result=result,
            attempts=0,
            wall_seconds=time.perf_counter() - started,
            cached=True,
        )

    # -- outcome recording -------------------------------------------

    def _check_result(self, job: Job, result: RunResult) -> str | None:
        """Apply the opt-in check hook; an error string means failure."""
        if self.checks is None or result is None:
            return None
        report = self.checks(result)
        if report.ok:
            return None
        names = report.invariant_names()
        detail = "; ".join(v.format() for v in report.errors[:3])
        self._emit(
            CheckFailed(
                index=job.index,
                label=job.label,
                invariants=names,
                detail=detail,
            )
        )
        return f"check failed: violated {', '.join(names)}"

    def _record_success(
        self,
        job: Job,
        data: dict,
        attempts: int,
        wall: float,
        outcomes,
        metrics_data: dict | None = None,
        spans_data: dict | None = None,
    ) -> bool:
        """Record a completed job; ``False`` when its checks failed."""
        result = run_result_from_dict(data)
        error = self._check_result(job, result)
        if error is not None:
            self._record_failure(job, error, attempts, wall, outcomes)
            return False
        outcomes[job.index] = JobOutcome(
            index=job.index,
            spec=job.spec,
            label=job.label,
            result=result,
            attempts=attempts,
            wall_seconds=wall,
            metrics=metrics_data,
            spans=spans_data,
        )
        if metrics_data is not None:
            self._emit(
                MetricsSnapshot(
                    index=job.index,
                    label=job.label,
                    metrics=metrics_data,
                )
            )
        if spans_data is not None:
            self._emit(
                SpanSnapshot(
                    index=job.index,
                    label=job.label,
                    spans=spans_data,
                )
            )
        self._emit(
            JobFinished(
                index=job.index,
                label=job.label,
                wall_seconds=wall,
                attempts=attempts,
                sser=result.sser,
                stp=result.stp,
            )
        )
        self._checkpoint_tick(outcomes)
        return True

    def _record_failure(
        self, job: Job, error: str, attempts: int, wall: float, outcomes
    ) -> None:
        outcomes[job.index] = JobOutcome(
            index=job.index,
            spec=job.spec,
            label=job.label,
            error=error,
            attempts=attempts,
            wall_seconds=wall,
        )
        self._emit(
            JobFailed(
                index=job.index,
                label=job.label,
                error=error,
                attempts=attempts,
                wall_seconds=wall,
            )
        )
        # Administrative failures (fail-fast skips/cancels) carry no
        # in-flight state worth a bundle; real deaths do.
        if not error.startswith(("skipped (", "cancelled (")):
            reason = "timeout" if error.startswith("timed out") else "failed"
            self._dump_postmortem(job, reason, error)
        self._checkpoint_tick(outcomes)

    # -- serial path -------------------------------------------------

    def _run_serial(self, jobs_list: Sequence[Job], outcomes: dict) -> None:
        aborted = False
        self._batch_started = time.perf_counter()
        remaining = len(jobs_list)
        for job in jobs_list:
            if aborted:
                self._record_failure(
                    job, "skipped (fail-fast abort)", 0, 0.0, outcomes
                )
                continue
            remaining -= 1
            self._observe_queue(
                time.perf_counter() - self._batch_started, remaining
            )
            self._emit(JobStarted(index=job.index, label=job.label))
            started = time.perf_counter()
            try:
                with obs_tracing.span("runtime.execute_job"):
                    (
                        _,
                        data,
                        attempts,
                        wall,
                        metrics_data,
                        spans_data,
                    ) = _execute_job(
                        job, self.retry, self.fault_plan, self.metrics,
                        self.spans,
                    )
            except Exception as error:
                self._record_failure(
                    job,
                    f"{type(error).__name__}: {error}",
                    self.retry.max_attempts,
                    time.perf_counter() - started,
                    outcomes,
                )
                if self.failure_policy is FailurePolicy.FAIL_FAST:
                    aborted = True
                continue
            elapsed = time.perf_counter() - started
            if (
                self.timeout_seconds is not None
                and elapsed > self.timeout_seconds
            ):
                # In-process execution cannot preempt a running job,
                # so the budget is enforced post-hoc: the finished
                # result is discarded, as the pool path discards a
                # cancelled worker's.  Shard workers (jobs=1) rely on
                # this to honor the fleet's --timeout.
                self._record_failure(
                    job,
                    f"timed out after {self.timeout_seconds:.1f}s",
                    attempts,
                    elapsed,
                    outcomes,
                )
                if self.failure_policy is FailurePolicy.FAIL_FAST:
                    aborted = True
                continue
            ok = self._record_success(
                job, data, attempts, wall, outcomes, metrics_data,
                spans_data,
            )
            if not ok and self.failure_policy is FailurePolicy.FAIL_FAST:
                aborted = True

    # -- parallel path -----------------------------------------------

    def _run_parallel(self, jobs_list: Sequence[Job], outcomes: dict) -> None:
        try:
            executor = self._executor_factory(
                max_workers=min(self.jobs, len(jobs_list))
            )
        except (NotImplementedError, OSError, ImportError) as error:
            warnings.warn(
                f"process pool unavailable ({error}); running serially"
            )
            self._run_serial(jobs_list, outcomes)
            return

        pending: dict[futures.Future, Job] = {}
        self._batch_started = time.perf_counter()
        try:
            for job in jobs_list:
                self._emit(JobStarted(index=job.index, label=job.label))
                future = executor.submit(
                    _execute_job, job, self.retry, self.fault_plan,
                    self.metrics, self.spans,
                )
                pending[future] = job
            self._harvest(
                pending, outcomes, min(self.jobs, len(jobs_list))
            )
        except futures.process.BrokenProcessPool:
            remaining = [
                job
                for job in pending.values()
                if job.index not in outcomes
            ]
            warnings.warn(
                f"worker pool broke; finishing {len(remaining)} "
                f"job(s) in-process"
            )
            self._run_serial(remaining, outcomes)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    def _harvest(
        self, pending: dict, outcomes: dict, max_workers: int
    ) -> None:
        track_queue = self._queue_registry is not None
        need_poll = self.timeout_seconds is not None or track_queue
        poll = self._POLL_SECONDS if need_poll else None
        total = len(pending)
        #: Futures whose queue wait has been observed (at arm time, or
        #: at completion for jobs that finished between polls).
        waited: set[futures.Future] = set()

        def observe_queue(future: futures.Future) -> None:
            if not track_queue or future in waited:
                return
            waited.add(future)
            self._observe_queue(
                time.perf_counter() - self._batch_started,
                total - len(waited),
            )
        #: future -> monotonic time at which it was first seen running.
        #: The timeout clock arms *here*, not at submission: a job
        #: queued behind earlier work accrues no budget and can never
        #: be recorded as timed out without having started.
        started: dict[futures.Future, float] = {}
        #: Timed-out futures whose worker is still running.  A running
        #: process-pool job cannot be cancelled, so its slot stays
        #: busy; we keep tracking it and reconcile the late completion
        #: with an explicit JobReconciled event.
        orphans: dict[futures.Future, Job] = {}
        try:
            while pending:
                done, _ = futures.wait(
                    pending, timeout=poll, return_when=futures.FIRST_COMPLETED
                )
                for future in done:
                    job = pending.pop(future)
                    if future.cancelled():
                        self._record_failure(
                            job, "cancelled (fail-fast abort)", 0, 0.0,
                            outcomes,
                        )
                        continue
                    observe_queue(future)
                    try:
                        (
                            _,
                            data,
                            attempts,
                            wall,
                            metrics_data,
                            spans_data,
                        ) = future.result()
                    except futures.process.BrokenProcessPool:
                        # Put the job back so the caller's serial-fallback
                        # path re-runs it alongside the other pending jobs.
                        pending[future] = job
                        raise
                    except Exception as error:
                        self._record_failure(
                            job,
                            f"{type(error).__name__}: {error}",
                            self.retry.max_attempts,
                            0.0,
                            outcomes,
                        )
                        if self.failure_policy is FailurePolicy.FAIL_FAST:
                            self._abort_pending(pending, outcomes)
                            return
                        continue
                    ok = self._record_success(
                        job, data, attempts, wall, outcomes, metrics_data,
                        spans_data,
                    )
                    if (
                        not ok
                        and self.failure_policy is FailurePolicy.FAIL_FAST
                    ):
                        self._abort_pending(pending, outcomes)
                        return
                self._reconcile_orphans(orphans)
                if need_poll:
                    now = time.monotonic()
                    # Worker slots currently held: armed pending jobs
                    # plus orphans whose worker is still grinding.
                    busy = sum(1 for f in pending if f in started)
                    busy += sum(1 for f in orphans if not f.done())
                    for future in list(pending):
                        job = pending[future]
                        begun = started.get(future)
                        if begun is None:
                            # future.running() alone over-arms: the
                            # pool flags up to max_workers+1 queued
                            # calls as running before a worker picks
                            # them up, so also require a free slot
                            # (pending iterates in submission order,
                            # which is the pool's dispatch order).
                            if future.running() and busy < max_workers:
                                started[future] = now
                                busy += 1
                                observe_queue(future)
                            continue
                        if (
                            self.timeout_seconds is None
                            or now - begun <= self.timeout_seconds
                        ):
                            continue
                        del pending[future]
                        if not future.cancel():
                            orphans[future] = job
                        # attempts=0: the attempt in flight was killed
                        # mid-run; how many attempts actually completed
                        # is unknowable from the parent (the worker may
                        # have been retrying).  The JobReconciled event
                        # carries the true count if the worker finishes.
                        self._record_failure(
                            job,
                            f"timed out after {self.timeout_seconds:.1f}s",
                            0,
                            now - begun,
                            outcomes,
                        )
                        if self.failure_policy is FailurePolicy.FAIL_FAST:
                            self._abort_pending(pending, outcomes)
                            return
        finally:
            self._drain_orphans(orphans)

    # -- orphan reconciliation ---------------------------------------

    def _reconcile_orphans(self, orphans: dict) -> None:
        """Emit a JobReconciled event for every orphan that finished."""
        for future in [f for f in orphans if f.done()]:
            job = orphans.pop(future)
            try:
                _, data, attempts, wall, _metrics, _spans = future.result()
            except Exception:
                self._emit(
                    JobReconciled(
                        index=job.index,
                        label=job.label,
                        outcome="failed",
                        attempts=self.retry.max_attempts,
                    )
                )
            else:
                # The late result stays out of the report (the job is
                # already recorded as timed out, keeping reports
                # deterministic) but the worker persisted it to the
                # result store, where a re-run or resume will find it.
                self._emit(
                    JobReconciled(
                        index=job.index,
                        label=job.label,
                        outcome="completed",
                        wall_seconds=wall,
                        attempts=attempts,
                        stored=job.cache_path is not None,
                    )
                )

    def _drain_orphans(self, orphans: dict) -> None:
        """Settle every remaining orphan at the end of the harvest."""
        if not orphans:
            return
        if self.orphan_grace_seconds:
            futures.wait(list(orphans), timeout=self.orphan_grace_seconds)
        self._reconcile_orphans(orphans)
        for future, job in list(orphans.items()):
            self._emit(
                JobReconciled(
                    index=job.index, label=job.label, outcome="abandoned"
                )
            )
            self._dump_postmortem(
                job,
                "abandoned",
                "worker still running when the campaign ended",
            )
        orphans.clear()

    def _abort_pending(self, pending: dict, outcomes: dict) -> None:
        for future in list(pending):
            job = pending.pop(future)
            future.cancel()
            self._record_failure(
                job, "cancelled (fail-fast abort)", 0, 0.0, outcomes
            )
