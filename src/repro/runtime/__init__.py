"""Campaign execution runtime: process-pool engine, events, retry.

This package is the single execution path for campaigns, sweeps,
benches and the CLI: it fans independent simulation runs out across
CPU cores, retries transient worker failures, and narrates progress
through a structured event stream.
"""

from repro.runtime.engine import (
    ExecutionEngine,
    ExecutionReport,
    FaultPlan,
    InjectedFault,
    Job,
    JobOutcome,
    default_jobs,
)
from repro.runtime.events import (
    CallbackSink,
    CampaignCheckpoint,
    CampaignFinished,
    CampaignPlan,
    CampaignStarted,
    CheckFailed,
    Event,
    EventSink,
    JobCached,
    JobFailed,
    JobFinished,
    JobReconciled,
    JobStarted,
    JobTiming,
    JsonlEventSink,
    MetricsSnapshot,
    StderrProgressSink,
    UnknownEvent,
    event_from_dict,
    read_events,
    replay_timings,
)
from repro.runtime.resume import ResumeError, ResumeState
from repro.runtime.retry import (
    DEFAULT_RETRY,
    NO_RETRY,
    CampaignError,
    FailurePolicy,
    RetryPolicy,
)
from repro.runtime.store import ResultStore

__all__ = [
    "CallbackSink",
    "CampaignCheckpoint",
    "CampaignError",
    "CampaignFinished",
    "CampaignPlan",
    "CampaignStarted",
    "CheckFailed",
    "DEFAULT_RETRY",
    "Event",
    "EventSink",
    "ExecutionEngine",
    "ExecutionReport",
    "FailurePolicy",
    "FaultPlan",
    "InjectedFault",
    "Job",
    "JobCached",
    "JobFailed",
    "JobFinished",
    "JobOutcome",
    "JobReconciled",
    "JobStarted",
    "JobTiming",
    "JsonlEventSink",
    "MetricsSnapshot",
    "NO_RETRY",
    "ResultStore",
    "ResumeError",
    "ResumeState",
    "RetryPolicy",
    "StderrProgressSink",
    "UnknownEvent",
    "default_jobs",
    "event_from_dict",
    "read_events",
    "replay_timings",
]
