"""Campaign execution runtime: process-pool engine, events, retry.

This package is the single execution path for campaigns, sweeps,
benches and the CLI: it fans independent simulation runs out across
CPU cores, retries transient worker failures, and narrates progress
through a structured event stream.
"""

from repro.runtime.engine import (
    ExecutionEngine,
    ExecutionReport,
    FaultPlan,
    InjectedFault,
    Job,
    JobOutcome,
    default_jobs,
)
from repro.runtime.events import (
    CallbackSink,
    CampaignFinished,
    CampaignStarted,
    CheckFailed,
    Event,
    EventSink,
    JobCached,
    JobFailed,
    JobFinished,
    JobStarted,
    JobTiming,
    JsonlEventSink,
    MetricsSnapshot,
    StderrProgressSink,
    UnknownEvent,
    event_from_dict,
    read_events,
    replay_timings,
)
from repro.runtime.retry import (
    DEFAULT_RETRY,
    NO_RETRY,
    CampaignError,
    FailurePolicy,
    RetryPolicy,
)

__all__ = [
    "CallbackSink",
    "CampaignError",
    "CampaignFinished",
    "CampaignStarted",
    "CheckFailed",
    "DEFAULT_RETRY",
    "Event",
    "EventSink",
    "ExecutionEngine",
    "ExecutionReport",
    "FailurePolicy",
    "FaultPlan",
    "InjectedFault",
    "Job",
    "JobCached",
    "JobFailed",
    "JobFinished",
    "JobOutcome",
    "JobStarted",
    "JobTiming",
    "JsonlEventSink",
    "MetricsSnapshot",
    "NO_RETRY",
    "RetryPolicy",
    "StderrProgressSink",
    "UnknownEvent",
    "default_jobs",
    "event_from_dict",
    "read_events",
    "replay_timings",
]
