"""Checkpoint/resume state reconstruction for durable campaigns.

A durable campaign leaves two artifacts behind: the JSONL event log
(which jobs were planned, which completed or failed -- see
:class:`~repro.runtime.events.CampaignPlan` and
:class:`~repro.runtime.events.CampaignCheckpoint`) and the result
store (the completed results themselves, one atomic file per spec
key).  :class:`ResumeState` joins the two: it replays the log into
per-key statuses so :meth:`ExecutionEngine.run_many(resume_from=...)
<repro.runtime.engine.ExecutionEngine.run_many>` and the
``repro resume`` CLI verb can skip completed jobs and re-run only
pending or failed ones, producing a report identical to an
uninterrupted run.

The reconstruction is conservative: a job counts as completed only if
the log says so *and* its result is actually loadable from the store
(the engine re-verifies the second half through its normal cache
path), so a checkpoint that outlived a lost store entry costs one
recomputation, never a wrong result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.runtime.events import (
    CampaignCheckpoint,
    CampaignPlan,
    Event,
    JobCached,
    JobFailed,
    JobFinished,
    read_events,
)
from repro.sim.campaign import RunSpec


class ResumeError(ValueError):
    """An event log cannot be resumed (no plan record, or the log
    does not describe the campaign the caller is trying to resume)."""


@dataclass
class ResumeState:
    """Everything an interrupted campaign's log says about its jobs.

    Attributes:
        specs: the planned runs, in submission order.
        keys: ``RunSpec.key()`` per spec (result-store file names).
        labels: display labels per spec.
        store: result-store directory recorded in the plan (``None``
            for campaigns that ran without one -- resumable, but every
            completed job must be recomputed).
        machine: plan's single-machine override descriptor, if any.
        failure_policy: engine failure-policy value from the plan.
        timeout_seconds: engine per-job timeout from the plan.
        max_attempts: engine retry attempts from the plan.
        shards: shard count recorded by the shard coordinator's plan
            (``None`` when the campaign ran single-host).
        completed: keys the log records as successfully finished.
        failed: keys whose last terminal event is a failure.
    """

    specs: list[RunSpec]
    keys: list[str]
    labels: list[str]
    store: str | None = None
    machine: dict | None = None
    failure_policy: str = "fail-fast"
    timeout_seconds: float | None = None
    max_attempts: int = 1
    shards: int | None = None
    completed: set[str] = field(default_factory=set)
    failed: set[str] = field(default_factory=set)

    @property
    def pending(self) -> set[str]:
        """Keys with no terminal status: never started or in flight
        when the campaign died."""
        return set(self.keys) - self.completed - self.failed

    def summary(self) -> str:
        return (
            f"{len(self.keys)} job(s): {len(self.completed)} completed, "
            f"{len(self.failed)} failed, {len(self.pending)} pending"
        )

    @classmethod
    def from_events(cls, events: Sequence[Event]) -> "ResumeState":
        """Reconstruct resume state from a replayed event stream.

        The *last* :class:`CampaignPlan` wins (a resumed campaign
        appends a fresh plan to the same log), and only events after
        it count.  Per-job status comes from the last checkpoint plus
        any later terminal events; for a key with several terminal
        events the most recent one decides.
        """
        plan: CampaignPlan | None = None
        plan_at = -1
        for position, event in enumerate(events):
            if isinstance(event, CampaignPlan):
                plan, plan_at = event, position
        if plan is None:
            raise ResumeError(
                "event log has no campaign plan record; only campaigns "
                "run with this version's engine (which emits one per "
                "run) can be resumed"
            )
        specs = [RunSpec.from_dict(data) for data in plan.specs]
        state = cls(
            specs=specs,
            keys=list(plan.keys),
            labels=list(plan.labels),
            store=plan.store,
            machine=plan.machine,
            failure_policy=plan.failure_policy,
            timeout_seconds=plan.timeout_seconds,
            max_attempts=plan.max_attempts,
            shards=plan.shards,
        )
        known = set(state.keys)
        status: dict[str, str] = {}
        for event in events[plan_at + 1:]:
            if isinstance(event, CampaignCheckpoint):
                for key in event.completed:
                    if key in known:
                        status[key] = "completed"
                for key in event.failed:
                    if key in known:
                        status[key] = "failed"
                for key in event.pending:
                    status.pop(key, None)
            elif isinstance(event, (JobCached, JobFinished, JobFailed)):
                if not 0 <= event.index < len(state.keys):
                    continue
                key = state.keys[event.index]
                status[key] = (
                    "failed" if isinstance(event, JobFailed) else "completed"
                )
        state.completed = {k for k, s in status.items() if s == "completed"}
        state.failed = {k for k, s in status.items() if s == "failed"}
        return state

    @classmethod
    def load(cls, path: str | Path) -> "ResumeState":
        """Reconstruct resume state from a JSONL event log on disk.

        A truncated final line (the usual signature of a SIGKILL
        mid-append) is tolerated by :func:`read_events`; the job whose
        terminal event was lost simply re-runs.
        """
        return cls.from_events(read_events(path))

    def check_specs(self, specs: Sequence[RunSpec]) -> None:
        """Verify ``specs`` matches the plan this state was built from."""
        keys = [spec.key() for spec in specs]
        if keys != self.keys:
            raise ResumeError(
                f"resume state describes {len(self.keys)} job(s) that do "
                f"not match the {len(keys)} spec(s) being run; refusing "
                "to mix results from different campaigns"
            )
