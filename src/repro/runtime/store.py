"""Persistent, content-addressed result store for campaigns.

Every completed run is stored as one JSON file named by its spec's
content hash (:meth:`repro.sim.campaign.RunSpec.key`), written
atomically through :mod:`repro.sim.serialize` so a crash or SIGKILL
mid-write never leaves a partial entry behind.  Reads treat anything
unreadable -- truncated file, corrupt JSON, wrong format version --
as a miss (the :class:`~repro.sim.serialize.ResultCacheError`
convention), so a damaged entry costs one recomputation, never a
crashed campaign.

The store is the durability half of checkpoint/resume: the engine's
event log records *which* jobs completed (by spec key), the store
holds *their results*, and ``repro resume`` joins the two to finish an
interrupted campaign without re-running completed work.  The on-disk
layout (``<key>.json`` inside one directory) is exactly what
:class:`~repro.sim.campaign.Campaign` has always written, so existing
campaign directories are valid stores as-is.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.sim.results import RunResult
from repro.sim.serialize import ResultCacheError, load_run, save_run

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.campaign import RunSpec


class ResultStore:
    """A directory of completed run results, addressed by spec key.

    Guarantees:

    * **Atomicity** -- entries are written via temp file +
      ``os.replace``; concurrent writers (parallel campaign workers)
      and readers never observe a partial file.
    * **Corrupt-entry-as-miss** -- :meth:`load` returns ``None`` for
      missing, truncated or otherwise unreadable entries instead of
      raising, so campaigns self-heal by recomputing.
    * **Idempotence** -- results are a pure function of their spec, so
      re-writing an existing key is harmless (last atomic write wins
      with identical bytes).
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        """On-disk path for a spec key (the file may not exist)."""
        return self.directory / f"{key}.json"

    def path_for(self, spec: "RunSpec") -> Path:
        return self.path(spec.key())

    def contains(self, key: str) -> bool:
        return self.path(key).exists()

    def load(self, key: str) -> RunResult | None:
        """The stored result for ``key``, or ``None`` on any miss.

        A corrupt or partial entry reads as a miss (the
        :class:`ResultCacheError` convention); callers recompute and
        the next :meth:`save` atomically repairs the entry.
        """
        path = self.path(key)
        if not path.exists():
            return None
        try:
            return load_run(path)
        except ResultCacheError:
            return None

    def save(self, key: str, result: RunResult) -> Path:
        """Atomically persist ``result`` under ``key``."""
        return save_run(result, self.path(key))

    def keys(self) -> list[str]:
        """Keys of every entry present on disk, sorted."""
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def digest(self) -> str:
        """Content hash over every entry's name and exact bytes.

        Two stores digest equal iff they hold the same keys with
        byte-identical files -- the check behind the shard-count
        invariance guarantee (``--shards 1/2/4`` must leave identical
        stores) and the CI kill-and-resume byte-for-byte diff.
        """
        import hashlib

        acc = hashlib.sha256()
        for key in self.keys():
            acc.update(key.encode("utf-8"))
            acc.update(b"\x00")
            acc.update(self.path(key).read_bytes())
            acc.update(b"\x00")
        return acc.hexdigest()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed
