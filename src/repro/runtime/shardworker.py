"""Executable pipe-worker for the shard protocol.

``python -m repro.runtime.shardworker`` reads one shard plan from
stdin and streams protocol messages to stdout; see
:mod:`repro.runtime.shard` for the protocol and the coordinator that
drives it.  Kept separate from the library module so ``-m`` execution
does not re-import the package's re-exported copy under two names.
"""

from repro.runtime.shard import worker_main

if __name__ == "__main__":
    raise SystemExit(worker_main())
