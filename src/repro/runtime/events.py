"""Structured progress events for campaign execution.

The execution engine narrates a campaign as a stream of typed events
(:class:`JobStarted`, :class:`JobCached`, :class:`JobFinished`,
:class:`JobFailed`, bracketed by :class:`CampaignStarted` and
:class:`CampaignFinished`).  Sinks consume the stream:
:class:`StderrProgressSink` renders live one-line progress,
:class:`JsonlEventSink` appends one JSON object per event for post-hoc
analysis, and :func:`replay_timings` turns such a log back into
per-job wall-clock timings.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, ClassVar, Sequence


@dataclass(frozen=True)
class Event:
    """Base class for all campaign events.

    ``trace`` is the optional :class:`~repro.obs.context.TraceContext`
    in dict form, stamped by the engine when trace propagation is on.
    It is **omitted** from :meth:`to_dict` when ``None`` so unstamped
    logs keep their historical byte layout.
    """

    kind: ClassVar[str] = "event"

    timestamp: float = field(
        default_factory=time.time, kw_only=True, compare=False
    )
    trace: dict[str, Any] | None = field(
        default=None, kw_only=True, compare=False
    )

    def to_dict(self) -> dict[str, Any]:
        data = dataclasses.asdict(self)
        data["event"] = self.kind
        if data.get("trace") is None:
            data.pop("trace", None)
        return data


@dataclass(frozen=True)
class CampaignStarted(Event):
    """The engine accepted a batch of jobs."""

    kind: ClassVar[str] = "campaign_started"

    total: int


@dataclass(frozen=True)
class CampaignPlan(Event):
    """The campaign's full job list, recorded up front for resume.

    Emitted right after :class:`CampaignStarted`, before any job
    executes, so a killed campaign's event log always names every job
    it intended to run.  ``specs`` holds each
    :class:`~repro.sim.campaign.RunSpec` in ``dataclasses.asdict``
    form (rebuild with ``RunSpec.from_dict``), ``keys`` the matching
    ``RunSpec.key()`` content hashes (the result-store file names),
    and ``labels`` the display labels.  ``store`` is the result-store
    directory when the campaign is store-backed; ``machine`` is a
    minimal descriptor of a single-machine override
    (``{"name": ..., "small_frequency_ghz": ...}``) when one was
    supplied and is reconstructible from ``STANDARD_MACHINES``.
    ``failure_policy``, ``timeout_seconds`` and ``max_attempts``
    record the engine settings so a resume runs under the same rules.
    ``shards`` is the shard count when the plan was written by the
    shard coordinator (``None`` for single-host campaigns), so
    ``repro resume`` can put a sharded campaign back on the sharded
    path.
    """

    kind: ClassVar[str] = "campaign_plan"

    specs: list[dict]
    keys: list[str]
    labels: list[str]
    store: str | None = None
    machine: dict | None = None
    failure_policy: str = "fail-fast"
    timeout_seconds: float | None = None
    max_attempts: int = 1
    shards: int | None = None


@dataclass(frozen=True)
class CampaignCheckpoint(Event):
    """Periodic snapshot of per-job completion state, for resume.

    ``completed``/``failed``/``pending`` partition the campaign's spec
    keys by their status at emission time.  The engine emits one every
    few terminal events and a final one before
    :class:`CampaignFinished`; on resume the *last* checkpoint plus
    any later terminal events reconstruct exactly which work remains.
    """

    kind: ClassVar[str] = "campaign_checkpoint"

    completed: list[str]
    failed: list[str]
    pending: list[str]


@dataclass(frozen=True)
class JobStarted(Event):
    """A job was handed to a worker (or began executing in-process)."""

    kind: ClassVar[str] = "job_started"

    index: int
    label: str


@dataclass(frozen=True)
class JobCached(Event):
    """A job's result was served from the on-disk campaign cache."""

    kind: ClassVar[str] = "job_cached"

    index: int
    label: str
    wall_seconds: float


@dataclass(frozen=True)
class JobFinished(Event):
    """A job completed successfully.

    ``sser``/``stp`` carry the run's headline metrics so event logs
    are analyzable without reloading results.
    """

    kind: ClassVar[str] = "job_finished"

    index: int
    label: str
    wall_seconds: float
    attempts: int = 1
    cached: bool = False
    sser: float | None = None
    stp: float | None = None


@dataclass(frozen=True)
class CheckFailed(Event):
    """A job's result violated one or more paper invariants.

    Emitted by the engine's opt-in per-job check hook (``checks=``)
    just before the job's terminal :class:`JobFailed` event; carries
    the violated invariant names and a short report excerpt so event
    logs are diagnosable without re-running the checks.
    """

    kind: ClassVar[str] = "check_failed"

    index: int
    label: str
    invariants: tuple[str, ...]
    detail: str = ""


@dataclass(frozen=True)
class JobFailed(Event):
    """A job failed permanently (retries exhausted, timeout, or
    skipped by a fail-fast abort).

    ``attempts`` counts attempts that actually *completed*: retries
    exhausted reports the retry policy's total, a skipped or cancelled
    job reports 0, and a timed-out job reports 0 because the attempt
    in flight was killed mid-run (the worker may have been on any
    retry; see :class:`JobReconciled` for the late truth).
    """

    kind: ClassVar[str] = "job_failed"

    index: int
    label: str
    error: str
    attempts: int = 1
    wall_seconds: float = 0.0


@dataclass(frozen=True)
class JobReconciled(Event):
    """A timed-out job's worker eventually finished (or never did).

    ``Future.cancel()`` cannot stop a *running* process-pool job, so a
    timed-out job keeps burning its worker slot until the attempt in
    flight completes.  The engine keeps tracking such orphans and
    emits exactly one ``JobReconciled`` per orphan stating what became
    of the late work:

    * ``outcome="completed"`` -- the worker finished successfully
      after the deadline.  The late result is *discarded from the
      report* (the job stays failed, keeping reports deterministic)
      but ``stored=True`` records that the worker persisted it to the
      result store, where a later re-run or ``repro resume`` will find
      it as a cache hit.
    * ``outcome="failed"`` -- the worker raised after the deadline.
    * ``outcome="abandoned"`` -- the campaign ended while the worker
      was still running; the result, if any, was never observed.
    """

    kind: ClassVar[str] = "job_reconciled"

    index: int
    label: str
    outcome: str  # "completed" | "failed" | "abandoned"
    wall_seconds: float = 0.0
    attempts: int = 0
    stored: bool = False


@dataclass(frozen=True)
class MetricsSnapshot(Event):
    """A job's merged metrics registry snapshot (repro.obs.metrics).

    Emitted right before the job's terminal event when the engine runs
    with ``metrics=True``; ``metrics`` is the JSON form of
    :meth:`repro.obs.metrics.RegistrySnapshot.to_dict`, so snapshots
    from an event log merge with
    ``MetricsRegistry().merge(event.metrics)``.
    """

    kind: ClassVar[str] = "metrics_snapshot"

    index: int
    label: str
    metrics: dict[str, Any]


@dataclass(frozen=True)
class SpanSnapshot(Event):
    """A job's serialized span tree (repro.obs.tracing).

    Emitted right before the job's terminal event when the engine runs
    with ``spans=True``; ``spans`` is the JSON form of
    :meth:`repro.obs.tracing.SpanNode.to_dict`, so shard workers ship
    their span trees home inside the normal event stream and the
    coordinator grafts them into a fleet-wide forest with
    :func:`repro.obs.tracing.merge_trees` (``repro stats --spans``).
    """

    kind: ClassVar[str] = "span_snapshot"

    index: int
    label: str
    spans: dict[str, Any]


@dataclass(frozen=True)
class PostmortemWritten(Event):
    """A flight-recorder postmortem bundle was dumped for a dead job.

    Marks in the event log that ``repro postmortem <key>`` has
    something to show: ``key`` is the job's run key (the bundle file
    name under ``<store>/postmortems/``), ``reason`` is one of
    ``failed`` / ``timeout`` / ``abandoned``.
    """

    kind: ClassVar[str] = "postmortem_written"

    index: int
    label: str
    key: str
    reason: str
    path: str = ""


@dataclass(frozen=True)
class CampaignFinished(Event):
    """The batch is done; totals for the whole campaign."""

    kind: ClassVar[str] = "campaign_finished"

    total: int
    completed: int
    cached: int
    failed: int
    wall_seconds: float


@dataclass(frozen=True)
class UnknownEvent(Event):
    """Fallback for event kinds this version does not know.

    Replaying a log written by a newer version must not crash: the raw
    dict is preserved verbatim in ``data`` (and round-trips unchanged
    through :meth:`to_dict`), so downstream tooling can still count,
    filter, or forward what it does not understand.
    """

    kind: ClassVar[str] = "unknown"

    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return dict(self.data)


#: Terminal per-job events (exactly one per job).
TERMINAL_EVENTS = (JobCached, JobFinished, JobFailed)

_EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        CampaignStarted,
        CampaignPlan,
        CampaignCheckpoint,
        JobStarted,
        JobCached,
        CheckFailed,
        MetricsSnapshot,
        SpanSnapshot,
        PostmortemWritten,
        JobFinished,
        JobFailed,
        JobReconciled,
        CampaignFinished,
    )
}


def event_schema() -> dict[str, Any]:
    """The frozen wire schema: every known kind and its fields.

    Pinned by ``tests/fixtures/event_schema.json`` -- changing an
    existing kind's fields is a compatibility break (old logs must
    keep replaying), while *adding* kinds is fine because unknown
    kinds degrade to :class:`UnknownEvent`.
    """
    return {
        "version": 1,
        "events": {
            kind: [f.name for f in dataclasses.fields(cls)]
            for kind, cls in sorted(_EVENT_TYPES.items())
        },
    }


def _unknown_event(raw: dict[str, Any]) -> UnknownEvent:
    timestamp = raw.get("timestamp")
    if not isinstance(timestamp, (int, float)) or isinstance(timestamp, bool):
        timestamp = 0.0
    return UnknownEvent(data=raw, timestamp=float(timestamp))


def event_from_dict(data: dict[str, Any]) -> Event:
    """Rebuild an event from its :meth:`Event.to_dict` form.

    Unknown event kinds -- and known kinds whose fields this version
    cannot construct (logs written by a newer version) -- degrade to
    :class:`UnknownEvent` preserving the raw dict instead of raising.
    """
    raw = dict(data)
    data = dict(data)
    kind = data.pop("event", None)
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        return _unknown_event(raw)
    if "invariants" in data:  # JSON round-trips tuples as lists
        data["invariants"] = tuple(data["invariants"])
    try:
        return cls(**data)
    except TypeError:
        return _unknown_event(raw)


def stamp_trace(event: Event, trace: dict[str, Any] | None) -> Event:
    """Return ``event`` carrying ``trace``, unless it already has one.

    :class:`UnknownEvent` is passed through untouched -- its payload
    belongs to a foreign writer and must round-trip verbatim.
    """
    if (
        trace is None
        or event.trace is not None
        or isinstance(event, UnknownEvent)
    ):
        return event
    return dataclasses.replace(event, trace=trace)


class EventSink:
    """Consumer of campaign events.  Subclasses override :meth:`emit`."""

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources; safe to call twice."""


class CallbackSink(EventSink):
    """Adapter forwarding every event to a plain callable."""

    def __init__(self, callback: Callable[[Event], None]):
        self.callback = callback

    def emit(self, event: Event) -> None:
        self.callback(event)


class StderrProgressSink(EventSink):
    """Human-readable one-line-per-job progress on stderr."""

    def __init__(self, stream=None, show_starts: bool = False):
        self._stream = stream
        self.show_starts = show_starts
        self._total = 0
        self._done = 0

    @property
    def stream(self):
        return self._stream if self._stream is not None else sys.stderr

    def _print(self, message: str) -> None:
        print(message, file=self.stream, flush=True)

    def _counter(self) -> str:
        if self._total:
            width = len(str(self._total))
            return f"[{self._done:>{width}}/{self._total}]"
        return f"[{self._done}]"

    def emit(self, event: Event) -> None:
        if isinstance(event, CampaignStarted):
            self._total, self._done = event.total, 0
            self._print(f"campaign: {event.total} jobs")
        elif isinstance(event, JobStarted):
            if self.show_starts:
                self._print(f"    start    {event.label}")
        elif isinstance(event, JobCached):
            self._done += 1
            self._print(f"{self._counter()} cached   {event.label}")
        elif isinstance(event, JobFinished):
            self._done += 1
            extra = f" sser={event.sser:.3e}" if event.sser is not None else ""
            self._print(
                f"{self._counter()} done     {event.label} "
                f"({event.wall_seconds:.2f}s){extra}"
            )
        elif isinstance(event, CheckFailed):
            self._print(
                f"    CHECK    {event.label}: violated "
                f"{', '.join(event.invariants)}"
            )
        elif isinstance(event, JobFailed):
            self._done += 1
            self._print(
                f"{self._counter()} FAILED   {event.label} "
                f"after {event.attempts} attempt(s): {event.error}"
            )
        elif isinstance(event, JobReconciled):
            self._print(
                f"    late     {event.label}: worker {event.outcome} "
                f"after timeout"
                + (" (result stored)" if event.stored else "")
            )
        elif isinstance(event, CampaignFinished):
            self._print(
                f"campaign finished: {event.completed} ok, "
                f"{event.cached} cached, {event.failed} failed "
                f"in {event.wall_seconds:.2f}s"
            )


class JsonlEventSink(EventSink):
    """Append events to a JSONL file, one JSON object per line."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._file = None

    def emit(self, event: Event) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("a")
            # A log whose writer was SIGKILLed can end mid-line; start
            # on a fresh line so the appended events stay parseable
            # (read_events skips the partial line, recognizing the
            # campaign-plan record that follows it).
            if self._file.tell() > 0:
                with self.path.open("rb") as existing:
                    existing.seek(-1, 2)
                    if existing.read(1) != b"\n":
                        self._file.write("\n")
        self._file.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def read_events(path: str | Path) -> list[Event]:
    """Read every event from a JSONL log written by
    :class:`JsonlEventSink`.

    A truncated or corrupt **final** line (the common outcome of a
    killed campaign mid-append) is skipped with a warning instead of
    crashing the replay.  The same applies to a corrupt line directly
    followed by a campaign-plan record: that is the kill signature
    after ``repro resume`` appended a fresh run to the log.  Corruption
    anywhere else still raises, as it means more than an interrupted
    write.
    """
    lines = [
        (number, line.strip())
        for number, line in enumerate(Path(path).read_text().splitlines(), 1)
        if line.strip()
    ]
    events = []
    for position, (number, line) in enumerate(lines):
        try:
            events.append(event_from_dict(json.loads(line)))
        except (ValueError, TypeError) as error:
            if position == len(lines) - 1:
                warnings.warn(
                    f"{path}: skipping truncated or corrupt final event "
                    f"line {number}: {error}"
                )
                break
            try:
                peek = json.loads(lines[position + 1][1])
            except ValueError:
                peek = None
            resume_markers = ("campaign_started", "campaign_plan")
            if isinstance(peek, dict) and peek.get("event") in resume_markers:
                warnings.warn(
                    f"{path}: skipping truncated event line {number} "
                    f"(a resumed campaign appended after it): {error}"
                )
                continue
            raise ValueError(
                f"{path}: corrupt event on line {number}: {error}"
            ) from error
    return events


@dataclass(frozen=True)
class JobTiming:
    """Per-job timing recovered from an event log."""

    index: int
    label: str
    wall_seconds: float
    status: str  # "ok" | "cached" | "failed"
    attempts: int = 1


def replay_timings(
    source: str | Path | Sequence[Event],
) -> list[JobTiming]:
    """Replay an event log (path or event list) to per-job timings.

    Exactly one timing per job index is returned, in index order; if a
    job has several terminal events (e.g. the campaign was re-run into
    the same log), the last one wins.
    """
    events = read_events(source) if isinstance(source, (str, Path)) else source
    timings: dict[int, JobTiming] = {}
    for event in events:
        if isinstance(event, JobCached):
            timings[event.index] = JobTiming(
                event.index, event.label, event.wall_seconds, "cached"
            )
        elif isinstance(event, JobFinished):
            timings[event.index] = JobTiming(
                event.index,
                event.label,
                event.wall_seconds,
                "ok",
                event.attempts,
            )
        elif isinstance(event, JobFailed):
            timings[event.index] = JobTiming(
                event.index,
                event.label,
                event.wall_seconds,
                "failed",
                event.attempts,
            )
    return [timings[index] for index in sorted(timings)]


def merge_event_streams(
    streams: Sequence[Sequence[Event]],
) -> list[Event]:
    """Merge per-shard event streams into one canonical ordered list.

    Ordering rule: stable sort by the event's time axis (its
    ``timestamp``) first, then by shard id (the stream's position in
    ``streams``), then by within-stream order.  The result is a pure
    function of the streams themselves -- the order in which shards
    *completed* (or in which their messages arrived at the
    coordinator) cannot change it, which is what makes the merged log
    canonical and lets ``repro events``/``repro stats`` reproduce the
    coordinator's view from the per-shard logs alone.
    """
    tagged = [
        (event.timestamp, shard, sequence, event)
        for shard, stream in enumerate(streams)
        for sequence, event in enumerate(stream)
    ]
    tagged.sort(key=lambda item: item[:3])
    return [event for _, _, _, event in tagged]


def read_events_merged(paths: Sequence[str | Path]) -> list[Event]:
    """Read one or more JSONL event logs as one merged stream.

    A single path reads exactly like :func:`read_events`; several
    paths (e.g. a shard fleet's per-shard logs) merge through
    :func:`merge_event_streams`, with each path's position in
    ``paths`` acting as its shard id.
    """
    streams = [read_events(path) for path in paths]
    if len(streams) == 1:
        return streams[0]
    return merge_event_streams(streams)
