"""Retry and failure policies for the campaign execution engine.

Large design-space sweeps run thousands of jobs; a single transient
worker failure (an OOM-killed process, a filesystem hiccup while
writing a cache entry) should not discard hours of completed work.
:class:`RetryPolicy` re-attempts individual jobs with capped
exponential backoff, and :class:`FailurePolicy` decides what a
permanent job failure means for the campaign as a whole.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FailurePolicy(enum.Enum):
    """What the engine does when a job exhausts its retries.

    * ``FAIL_FAST`` -- abort the campaign: pending jobs are cancelled,
      remaining jobs are skipped, and :class:`CampaignError` is raised
      (with the partial :class:`~repro.runtime.engine.ExecutionReport`
      attached).
    * ``COLLECT`` -- record the failure, keep running every other job,
      and report all failures together at the end; completed results
      are preserved.
    """

    FAIL_FAST = "fail-fast"
    COLLECT = "collect"


@dataclass(frozen=True)
class RetryPolicy:
    """Per-job retry with capped exponential backoff.

    Attributes:
        max_attempts: total attempts per job (1 = no retry).
        base_delay_seconds: sleep after the first failed attempt.
        backoff_factor: multiplier applied per subsequent failure.
        max_delay_seconds: upper bound on any single backoff sleep.
    """

    max_attempts: int = 1
    base_delay_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_delay_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay(self, failed_attempts: int) -> float:
        """Backoff sleep after ``failed_attempts`` failures (1-based)."""
        if failed_attempts < 1:
            raise ValueError("failed_attempts must be at least 1")
        raw = self.base_delay_seconds * self.backoff_factor ** (
            failed_attempts - 1
        )
        return min(raw, self.max_delay_seconds)


#: Convenience policy: a single attempt, no backoff.
NO_RETRY = RetryPolicy(max_attempts=1)

#: Convenience policy used by the CLI: three attempts, fast backoff.
DEFAULT_RETRY = RetryPolicy(max_attempts=3, base_delay_seconds=0.1)


class CampaignError(RuntimeError):
    """A campaign aborted (or, under ``COLLECT``, finished with
    failures the caller asked to be raised).

    Attributes:
        report: the partial
            :class:`~repro.runtime.engine.ExecutionReport`; completed
            results are preserved in it.
    """

    def __init__(self, report):
        self.report = report
        failures = report.failures
        detail = "; ".join(
            f"job {o.index} ({o.label}): {o.error}" for o in failures[:3]
        )
        if len(failures) > 3:
            detail += f"; ... {len(failures) - 3} more"
        super().__init__(
            f"{len(failures)} of {len(report.outcomes)} jobs failed: {detail}"
        )
