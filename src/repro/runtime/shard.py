"""Sharded campaign execution: coordinator, worker protocol, fleet view.

One :class:`~repro.runtime.engine.ExecutionEngine` scales to the cores
of a single host; the shard layer scales a campaign *across* engines.
The coordinator partitions a campaign's :class:`~repro.sim.campaign.
RunSpec` keyspace by stable content hash into N shards and drives each
shard in an independent worker speaking a line-oriented JSON protocol
(the same framing as the ``repro serve`` service, see
:mod:`repro.service.framing`) over a pluggable transport -- subprocess
pipes today, an SSH or socket backend later by swapping the transport
only.

Determinism contract (what the property tests and CI pin):

* **Shard-count invariance.**  Results are a pure function of their
  spec, the partition is a disjoint cover of the keyspace, and merged
  outcomes are reassembled in global submission order -- so merged
  stdout, result-store bytes and metrics totals are byte-identical
  across ``--shards 1/2/4``.
* **Canonical merged log.**  Per-shard event streams merge through
  :func:`repro.runtime.events.merge_event_streams`, a pure function of
  the streams; permuting shard completion order cannot change the
  merged log.
* **Resume.**  The coordinator writes the global plan and periodic
  checkpoints to its event log and every worker shares one
  content-addressed :class:`~repro.runtime.store.ResultStore`, so a
  SIGKILLed fleet resumes exactly like a single-host campaign:
  completed work is served from the store, the rest re-runs, and the
  final output is byte-identical to an uninterrupted run.

Protocol messages (one JSON object per line, keys sorted):

* coordinator -> worker: ``plan`` -- the shard's specs, global
  indices, labels, store/machine/engine settings.
* worker -> coordinator: ``hello`` (worker is up), ``event`` (one
  engine event, job indices already remapped to the global campaign),
  ``outcome`` (one finished job's full
  :meth:`~repro.runtime.engine.JobOutcome.to_dict`), ``done`` (shard
  totals plus its merged metrics snapshot), ``error`` (worker-fatal
  diagnostic).
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
import threading
import time
import warnings
from pathlib import Path
from queue import SimpleQueue
from typing import Callable, Mapping, Sequence

from repro.config.machines import MachineConfig
from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.runtime.engine import (
    ExecutionEngine,
    ExecutionReport,
    FaultPlan,
    JobOutcome,
)
from repro.runtime.events import (
    CampaignCheckpoint,
    CampaignFinished,
    CampaignPlan,
    CampaignStarted,
    Event,
    EventSink,
    JobCached,
    JobFailed,
    JobFinished,
    JsonlEventSink,
    SpanSnapshot,
    TERMINAL_EVENTS,
    event_from_dict,
    merge_event_streams,
    stamp_trace,
)
from repro.runtime.resume import ResumeState
from repro.runtime.retry import CampaignError, FailurePolicy, RetryPolicy
from repro.runtime.store import ResultStore
from repro.service.framing import FramingError, decode_line, encode_line
from repro.sim.campaign import RunSpec

#: Protocol version stamped into every plan/hello message; a worker
#: refuses a plan from a different major version.
PROTOCOL_VERSION = 1

#: Campaign-bracketing events a worker's engine emits about its *own*
#: sub-campaign; the coordinator keeps them out of the merged global
#: stream (it emits its own brackets) but records them in the
#: per-shard logs, which stay valid standalone campaign logs.
_SHARD_LOCAL_EVENTS = (
    CampaignStarted,
    CampaignPlan,
    CampaignCheckpoint,
    CampaignFinished,
)


class ShardProtocolError(RuntimeError):
    """A worker or coordinator broke the shard wire protocol."""


# -- keyspace partition ------------------------------------------------


def shard_of(key: str, shards: int) -> int:
    """Owning shard of a spec key (a ``RunSpec.key()`` hex digest).

    The key is already a content hash, so taking it mod ``shards``
    is a stable, uniformly-spread assignment: the same spec lands on
    the same shard in every process, on every host, forever.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    return int(key, 16) % shards


def partition_indices(
    keys: Sequence[str], shards: int
) -> list[list[int]]:
    """Partition spec positions by owning shard.

    Returns one (possibly empty) list of global indices per shard.
    The lists are a disjoint cover of ``range(len(keys))`` -- every
    index appears in exactly one shard, in ascending order -- which is
    the algebraic property the shard-count invariance tests pin.
    """
    owners: list[list[int]] = [[] for _ in range(shards)]
    for index, key in enumerate(keys):
        owners[shard_of(key, shards)].append(index)
    return owners


# -- worker plan and entry point ---------------------------------------


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """Everything one worker needs to execute its shard."""

    shard: int
    shards: int
    indices: tuple[int, ...]  # global position of each local spec
    specs: tuple[RunSpec, ...]
    labels: tuple[str, ...]
    store: str | None = None
    machine: dict | None = None  # engine machine-override descriptor
    batched: bool = False
    metrics: bool = False
    checks: bool = False
    max_attempts: int = 1
    checkpoint_every: int = 8
    fail_attempts: Mapping[int, int] | None = None  # local index -> n
    sleep_seconds: Mapping[int, float] | None = None
    # Additive v1 fields (absent on old coordinators -> defaults):
    spans: bool = False
    timeout_seconds: float | None = None
    trace: Mapping[str, object] | None = None  # coordinator TraceContext

    def to_message(self) -> dict:
        return {
            "msg": "plan",
            "protocol": PROTOCOL_VERSION,
            "shard": self.shard,
            "shards": self.shards,
            "indices": list(self.indices),
            "specs": [dataclasses.asdict(spec) for spec in self.specs],
            "labels": list(self.labels),
            "store": self.store,
            "machine": self.machine,
            "batched": self.batched,
            "metrics": self.metrics,
            "checks": self.checks,
            "max_attempts": self.max_attempts,
            "checkpoint_every": self.checkpoint_every,
            "fail_attempts": (
                {str(k): v for k, v in self.fail_attempts.items()}
                if self.fail_attempts
                else None
            ),
            "sleep_seconds": (
                {str(k): v for k, v in self.sleep_seconds.items()}
                if self.sleep_seconds
                else None
            ),
            "spans": self.spans,
            "timeout_seconds": self.timeout_seconds,
            "trace": dict(self.trace) if self.trace else None,
        }

    @classmethod
    def from_message(cls, message: Mapping) -> "ShardPlan":
        if message.get("msg") != "plan":
            raise ShardProtocolError(
                f"expected a plan message, got {message.get('msg')!r}"
            )
        if message.get("protocol") != PROTOCOL_VERSION:
            raise ShardProtocolError(
                f"protocol version mismatch: coordinator speaks "
                f"{message.get('protocol')!r}, this worker speaks "
                f"{PROTOCOL_VERSION}"
            )
        return cls(
            shard=int(message["shard"]),
            shards=int(message["shards"]),
            indices=tuple(int(i) for i in message["indices"]),
            specs=tuple(
                RunSpec.from_dict(data) for data in message["specs"]
            ),
            labels=tuple(message["labels"]),
            store=message.get("store"),
            machine=message.get("machine"),
            batched=bool(message.get("batched", False)),
            metrics=bool(message.get("metrics", False)),
            checks=bool(message.get("checks", False)),
            max_attempts=int(message.get("max_attempts", 1)),
            checkpoint_every=int(message.get("checkpoint_every", 8)),
            fail_attempts=(
                {int(k): int(v) for k, v in message["fail_attempts"].items()}
                if message.get("fail_attempts")
                else None
            ),
            sleep_seconds=(
                {int(k): float(v) for k, v in message["sleep_seconds"].items()}
                if message.get("sleep_seconds")
                else None
            ),
            spans=bool(message.get("spans", False)),
            timeout_seconds=(
                float(message["timeout_seconds"])
                if message.get("timeout_seconds") is not None
                else None
            ),
            trace=message.get("trace") or None,
        )


def run_worker(plan: ShardPlan, send: Callable[[dict], None]) -> None:
    """Execute one shard plan, streaming protocol messages via ``send``.

    The worker is a thin shell around the existing engines: a scalar
    :class:`ExecutionEngine` (or :class:`~repro.batch.sweep.
    BatchedExecutionEngine` when the plan says ``batched``) runs the
    shard's specs against the shared result store, its event stream is
    remapped from shard-local job indices to global campaign indices
    and forwarded line by line, and every terminal outcome ships back
    whole so the coordinator can rebuild the campaign report without
    re-reading the store.
    """
    send(
        {
            "msg": "hello",
            "protocol": PROTOCOL_VERSION,
            "shard": plan.shard,
            "pid": os.getpid(),
            "jobs": len(plan.specs),
        }
    )
    indices = plan.indices

    def remap(event: Event) -> Event:
        index = getattr(event, "index", None)
        if isinstance(index, int) and 0 <= index < len(indices):
            event = dataclasses.replace(event, index=indices[index])
        return event

    def ship(event: Event) -> None:
        send(
            {
                "msg": "event",
                "shard": plan.shard,
                "event": remap(event).to_dict(),
            }
        )

    from repro.runtime.events import CallbackSink

    checks = None
    if plan.checks:
        from repro.check import default_run_checks

        checks = default_run_checks
    machine = ExecutionEngine.machine_from_descriptor(plan.machine)
    kwargs = dict(
        jobs=1,
        failure_policy=FailurePolicy.COLLECT,
        sinks=[CallbackSink(ship)],
        checks=checks,
        metrics=plan.metrics,
        spans=plan.spans,
        checkpoint_every=plan.checkpoint_every,
    )
    if plan.batched:
        from repro.batch.sweep import BatchedExecutionEngine

        engine = BatchedExecutionEngine(**kwargs)
    else:
        fault = None
        if plan.fail_attempts or plan.sleep_seconds:
            fault = FaultPlan(
                fail_attempts=dict(plan.fail_attempts or {}),
                sleep_seconds=dict(plan.sleep_seconds or {}),
            )
        engine = ExecutionEngine(
            retry=RetryPolicy(
                max_attempts=plan.max_attempts, base_delay_seconds=0.0
            ),
            fault_plan=fault,
            timeout_seconds=plan.timeout_seconds,
            **kwargs,
        )
    # Events this worker emits carry the *fleet's* trace context (the
    # coordinator's campaign id, this shard's index), not a locally
    # re-derived one; with an old coordinator the engine mints its own.
    trace = None
    if plan.trace:
        trace = dataclasses.replace(
            obs_context.TraceContext.from_dict(plan.trace),
            shard=plan.shard,
        )
    with obs_context.activate(
        trace if trace is not None else obs_context.current()
    ):
        report = engine.run_many(
            list(plan.specs),
            machines=machine,
            labels=list(plan.labels),
            store=plan.store,
        )
    for outcome in report.outcomes:
        data = outcome.to_dict()
        data["index"] = indices[outcome.index]
        send({"msg": "outcome", "shard": plan.shard, "outcome": data})
    send(
        {
            "msg": "done",
            "shard": plan.shard,
            "wall_seconds": report.wall_seconds,
            "metrics": (
                report.metrics.to_dict()
                if report.metrics is not None
                else None
            ),
        }
    )


def worker_main(infile=None, outfile=None) -> int:
    """Pipe-worker entry point (``python -m repro.runtime.shardworker``).

    Reads one plan line from ``infile``, streams protocol messages to
    ``outfile``, and exits.  Anything fatal becomes an ``error``
    message (so the coordinator can diagnose) plus a nonzero exit.
    """
    infile = infile if infile is not None else sys.stdin
    outfile = outfile if outfile is not None else sys.stdout

    def send(message: dict) -> None:
        outfile.write(encode_line(message) + "\n")
        outfile.flush()

    line = infile.readline()
    if not line.strip():
        send({"msg": "error", "shard": -1, "error": "no plan received"})
        return 2
    try:
        plan = ShardPlan.from_message(decode_line(line))
        run_worker(plan, send)
    except Exception as exc:
        send(
            {
                "msg": "error",
                "shard": -1,
                "error": f"{type(exc).__name__}: {exc}",
            }
        )
        return 1
    return 0


# -- transports --------------------------------------------------------


class ShardTransport:
    """One worker connection: deliver a plan, stream back messages.

    ``start`` must arrange for ``deliver`` to be called once per
    protocol message and then exactly once with ``None`` when the
    stream ends (worker exit, EOF, or crash).  Implementations may
    call ``deliver`` from any thread; the coordinator serializes
    through a queue.  An SSH or socket backend only has to reproduce
    this contract -- the protocol and coordinator stay unchanged.
    """

    def start(
        self, plan: ShardPlan, deliver: Callable[[dict | None], None]
    ) -> None:
        raise NotImplementedError

    def terminate(self) -> None:
        """Best-effort teardown of the worker (fail-fast abort)."""


class ProcessShardTransport(ShardTransport):
    """Worker in a child process, protocol over stdin/stdout pipes.

    This is the SSH-shaped transport: the argv below could be
    ``["ssh", host, "python", "-m", "repro.runtime.shardworker"]`` and
    nothing else in the coordinator or protocol would change.
    """

    def __init__(self, python: str | None = None):
        self.python = python or sys.executable
        self._process: subprocess.Popen | None = None
        self._reader: threading.Thread | None = None

    def start(
        self, plan: ShardPlan, deliver: Callable[[dict | None], None]
    ) -> None:
        env = dict(os.environ)
        # The worker must import repro even when running from a source
        # tree without an installed package.
        src_root = str(Path(__file__).resolve().parents[2])
        parts = [src_root] + [
            p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
        ]
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        self._process = subprocess.Popen(
            [self.python, "-m", "repro.runtime.shardworker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        assert self._process.stdin is not None
        self._process.stdin.write(encode_line(plan.to_message()) + "\n")
        self._process.stdin.flush()
        self._process.stdin.close()
        process = self._process

        def pump() -> None:
            try:
                assert process.stdout is not None
                for line in process.stdout:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        message = decode_line(line)
                    except FramingError:
                        # A stray print on the worker's stdout must
                        # not take the fleet down; note it and move on.
                        warnings.warn(
                            f"shard {plan.shard}: ignoring non-protocol "
                            f"output: {line[:120]!r}"
                        )
                        continue
                    deliver(message)
            finally:
                if process.stdout is not None:
                    process.stdout.close()
                process.wait()
                deliver(None)

        self._reader = threading.Thread(
            target=pump, name=f"shard-{plan.shard}-reader", daemon=True
        )
        self._reader.start()

    def terminate(self) -> None:
        if self._process is not None and self._process.poll() is None:
            self._process.kill()


class InProcessShardTransport(ShardTransport):
    """Worker run synchronously in the coordinator's process.

    No parallelism -- shards execute one after another during
    ``start`` -- but the full protocol still runs, which makes this
    the deterministic backend for tests, the fuzzer, and environments
    where spawning processes is unavailable.
    """

    def start(
        self, plan: ShardPlan, deliver: Callable[[dict | None], None]
    ) -> None:
        try:
            run_worker(plan, deliver)
        except Exception as exc:  # worker-fatal, coordinator recovers
            deliver(
                {
                    "msg": "error",
                    "shard": plan.shard,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
        finally:
            deliver(None)


# -- fleet telemetry ---------------------------------------------------


@dataclasses.dataclass
class ShardProgress:
    """Live counters for one shard."""

    shard: int
    total: int
    done: int = 0
    failed: int = 0
    cached: int = 0
    started: bool = False
    finished: bool = False

    @property
    def queued(self) -> int:
        return max(0, self.total - self.done - self.failed)


class FleetStatus:
    """Thread-safe live view of a sharded campaign.

    The coordinator updates it from the message loop; the status
    socket server and the progress line read consistent snapshots.
    ``runs_per_s`` counts terminal jobs over elapsed wall time and the
    ETA extrapolates the remaining queue at that rate.
    """

    def __init__(self, totals: Sequence[int]):
        self._lock = threading.Lock()
        self._shards = [
            ShardProgress(shard=shard, total=total)
            for shard, total in enumerate(totals)
        ]
        self._started_at = time.monotonic()

    def mark_started(self, shard: int) -> None:
        with self._lock:
            self._shards[shard].started = True

    def mark_finished(self, shard: int) -> None:
        with self._lock:
            self._shards[shard].finished = True

    def record_event(self, shard: int, event: Event) -> None:
        with self._lock:
            progress = self._shards[shard]
            if isinstance(event, JobCached):
                progress.done += 1
                progress.cached += 1
            elif isinstance(event, JobFinished):
                progress.done += 1
                if event.cached:
                    progress.cached += 1
            elif isinstance(event, JobFailed):
                progress.failed += 1

    def snapshot(self) -> dict:
        with self._lock:
            shards = [dataclasses.asdict(p) for p in self._shards]
            for entry, progress in zip(shards, self._shards):
                entry["queued"] = progress.queued
        elapsed = max(time.monotonic() - self._started_at, 1e-9)
        done = sum(s["done"] for s in shards)
        failed = sum(s["failed"] for s in shards)
        queued = sum(s["queued"] for s in shards)
        rate = (done + failed) / elapsed
        return {
            "shards": shards,
            "total": sum(s["total"] for s in shards),
            "done": done,
            "failed": failed,
            "queued": queued,
            "cached": sum(s["cached"] for s in shards),
            "elapsed_seconds": elapsed,
            "runs_per_s": rate,
            "eta_seconds": (queued / rate) if rate > 0 else None,
        }

    def format_line(self) -> str:
        snap = self.snapshot()
        per_shard = " ".join(
            f"s{s['shard']}:{s['done']}/{s['total']}"
            + (f"!{s['failed']}" if s["failed"] else "")
            for s in snap["shards"]
        )
        eta = snap["eta_seconds"]
        eta_text = f"{eta:.0f}s" if eta is not None else "-"
        return (
            f"fleet {snap['done']}/{snap['total']} done "
            f"({snap['failed']} failed, {snap['queued']} queued) "
            f"{snap['runs_per_s']:.1f} runs/s eta {eta_text} [{per_shard}]"
        )


class FleetStatusServer:
    """Live fleet progress over a unix socket, framed like the
    scheduler service.

    Requests and responses are newline-delimited JSON with an ``op``
    field and an ``ok`` flag -- the ``repro serve`` substrate (see
    :mod:`repro.service.framing`) -- so any client that can talk to
    the service can watch a fleet::

        {"op": "fleet"}   ->  {"ok": true, "fleet": {...}}
        {"op": "ping"}    ->  {"ok": true, "pong": true}
        {"op": "metrics"} ->  {"ok": true, "openmetrics": "..."}

    ``metrics`` answers with an OpenMetrics text exposition (see
    :mod:`repro.obs.openmetrics`): fleet-status gauges always, plus the
    campaign's metric series when a ``metrics_source`` callable was
    wired in (the shard CLI wires the coordinator's).
    """

    def __init__(
        self,
        status: FleetStatus,
        path: str | Path,
        *,
        metrics_source: Callable[[], "str | None"] | None = None,
    ):
        self.status = status
        self.path = Path(path)
        self.metrics_source = metrics_source
        self._socket = None
        self._thread: threading.Thread | None = None
        self._closed = threading.Event()
        # Open client connections and their serving threads; close()
        # tears the connections down and joins every thread so a
        # finished fleet leaves nothing running (clients used to leak
        # as untracked daemon threads).
        self._lock = threading.Lock()
        self._clients: dict[threading.Thread, object] = {}

    def handle_line(self, line: str) -> str:
        try:
            request = decode_line(line)
        except FramingError as exc:
            return encode_line({"ok": False, "error": str(exc)})
        op = request.get("op")
        if op in ("fleet", "status"):
            return encode_line({"ok": True, "fleet": self.status.snapshot()})
        if op == "ping":
            return encode_line({"ok": True, "pong": True})
        if op == "metrics":
            return encode_line(
                {"ok": True, "openmetrics": self._render_metrics()}
            )
        return encode_line({"ok": False, "error": f"unknown op {op!r}"})

    def _render_metrics(self) -> str:
        text = None
        if self.metrics_source is not None:
            text = self.metrics_source()
        if text is None:
            from repro.obs import openmetrics

            text = openmetrics.render_snapshot(
                None, fleet=self.status.snapshot()
            )
        return text

    def start(self) -> None:
        import socket as socket_module

        if not hasattr(socket_module, "AF_UNIX"):  # pragma: no cover
            raise RuntimeError("fleet status sockets need AF_UNIX support")
        self.path.unlink(missing_ok=True)
        self._socket = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        self._socket.bind(str(self.path))
        self._socket.listen(8)
        self._socket.settimeout(0.1)

        def serve_client(connection) -> None:
            try:
                with connection, connection.makefile("rw") as stream:
                    for line in stream:
                        if not line.strip():
                            continue
                        stream.write(self.handle_line(line) + "\n")
                        stream.flush()
            except (OSError, ValueError):
                pass  # connection torn down under us by close()
            finally:
                with self._lock:
                    self._clients.pop(threading.current_thread(), None)

        def accept_loop() -> None:
            while not self._closed.is_set():
                try:
                    connection, _ = self._socket.accept()
                except OSError:
                    continue
                thread = threading.Thread(
                    target=serve_client, args=(connection,), daemon=True
                )
                with self._lock:
                    self._clients[thread] = connection
                thread.start()

        self._thread = threading.Thread(
            target=accept_loop, name="fleet-status", daemon=True
        )
        self._thread.start()

    def close(self, *, join_timeout: float = 2.0) -> None:
        import socket

        self._closed.set()
        if self._socket is not None:
            self._socket.close()
        if self._thread is not None:
            self._thread.join(timeout=join_timeout)
            self._thread = None
        with self._lock:
            clients = dict(self._clients)
        for thread, connection in clients.items():
            try:
                # shutdown (not just close) unblocks a thread parked in
                # recv on this connection; close alone would leak it.
                connection.shutdown(socket.SHUT_RDWR)  # type: ignore
            except OSError:
                pass
            try:
                connection.close()  # type: ignore[attr-defined]
            except OSError:
                pass
            thread.join(timeout=join_timeout)
        self.path.unlink(missing_ok=True)


# -- coordinator -------------------------------------------------------


class ShardCoordinator:
    """Drive a campaign across N shard workers and merge the results.

    The coordinator owns the global campaign narrative: it emits the
    plan (with ``shards`` recorded, so ``repro resume`` knows), relays
    every worker event to its live sinks as it arrives, appends
    periodic global checkpoints to the durable log, and -- once every
    shard reports done -- writes the canonically-merged per-shard
    streams plus the final checkpoint and campaign summary.  A worker
    that dies mid-shard (EOF before ``done``) has its unfinished jobs
    re-run in-process, mirroring the engine's broken-pool fallback, so
    one lost host degrades throughput, not the campaign.

    Args:
        shards: shard count (>= 1).
        transport_factory: zero-arg callable building one
            :class:`ShardTransport` per shard; defaults to subprocess
            pipes (:class:`ProcessShardTransport`).
        batched: workers use the cross-run batched engine.
        metrics: workers collect metrics; per-shard snapshots fold
            into the report's fleet total.
        checks: workers validate results against the paper invariants.
        failure_policy: ``COLLECT`` reports failures in the report;
            ``FAIL_FAST`` additionally raises :class:`CampaignError`
            after the fleet drains (shards are not aborted mid-flight,
            keeping merged output deterministic).
        max_attempts / checkpoint_every: forwarded engine settings.
        sinks: live sinks (progress); receive global brackets plus
            job events in arrival order, like a parallel engine's.
        log_sink: durable sink (usually a :class:`JsonlEventSink`);
            receives global brackets, periodic checkpoints, and the
            canonical merged stream at completion.
        shard_log_base: when set, each shard's raw stream is also
            written to ``<base>.shard<N>.jsonl`` -- standalone,
            individually-resumable campaign logs that ``repro events``
            / ``repro stats`` can merge back deterministically.
        fault_plan: deterministic fault injection, keyed by global job
            index (tests and chaos drills); split per shard.
        status: optional :class:`FleetStatus` to feed (one is created
            internally otherwise; read it via :attr:`status`).
    """

    def __init__(
        self,
        shards: int,
        *,
        transport_factory: Callable[[], ShardTransport] | None = None,
        batched: bool = False,
        metrics: bool = False,
        spans: bool = False,
        checks: bool = False,
        failure_policy: FailurePolicy = FailurePolicy.FAIL_FAST,
        max_attempts: int = 1,
        timeout_seconds: float | None = None,
        checkpoint_every: int = 8,
        sinks: Sequence[EventSink] = (),
        log_sink: EventSink | None = None,
        shard_log_base: str | Path | None = None,
        fault_plan: FaultPlan | None = None,
        status: FleetStatus | None = None,
    ):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shards = shards
        self.transport_factory = (
            transport_factory
            if transport_factory is not None
            else ProcessShardTransport
        )
        self.batched = batched
        self.metrics = metrics
        self.spans = spans
        self.checks = checks
        self.failure_policy = failure_policy
        self.max_attempts = max_attempts
        self.timeout_seconds = timeout_seconds
        self.checkpoint_every = max(1, checkpoint_every)
        self.sinks = list(sinks)
        self.log_sink = log_sink
        self.shard_log_base = shard_log_base
        self.fault_plan = fault_plan
        self.status = status
        self._trace: obs_context.TraceContext | None = None
        self._shard_metrics: dict[int, dict | None] = {}

    # -- emission helpers ---------------------------------------------

    def _emit_bracket(self, event: Event) -> None:
        """Campaign-level events go to live sinks and the log."""
        if self._trace is not None:
            event = stamp_trace(event, self._trace.to_dict())
        for sink in self.sinks:
            sink.emit(event)
        if self.log_sink is not None:
            self.log_sink.emit(event)

    def openmetrics(self) -> str:
        """OpenMetrics exposition of the fleet so far: status gauges
        plus whatever per-shard metric snapshots have arrived.  Wired
        into :class:`FleetStatusServer` as its ``metrics_source``."""
        from repro.obs import openmetrics as obs_openmetrics

        snapshot = None
        if self._shard_metrics:
            snapshot = obs_metrics.merge_snapshots(
                self._shard_metrics.get(shard)
                for shard in sorted(self._shard_metrics)
            )
        fleet = self.status.snapshot() if self.status is not None else None
        return obs_openmetrics.render_snapshot(snapshot, fleet=fleet)

    def _emit_live(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    # -- plan construction --------------------------------------------

    def _build_plans(
        self,
        owners: Sequence[Sequence[int]],
        specs: Sequence[RunSpec],
        labels: Sequence[str],
        store: ResultStore | None,
        machine_descriptor: dict | None,
    ) -> dict[int, ShardPlan]:
        plans: dict[int, ShardPlan] = {}
        for shard, indices in enumerate(owners):
            if not indices:
                continue
            fail_attempts = sleep_seconds = None
            if self.fault_plan is not None:
                local = {g: i for i, g in enumerate(indices)}
                fail_attempts = {
                    local[g]: n
                    for g, n in self.fault_plan.fail_attempts.items()
                    if g in local
                } or None
                sleep_seconds = {
                    local[g]: s
                    for g, s in self.fault_plan.sleep_seconds.items()
                    if g in local
                } or None
            plans[shard] = ShardPlan(
                shard=shard,
                shards=self.shards,
                indices=tuple(indices),
                specs=tuple(specs[i] for i in indices),
                labels=tuple(labels[i] for i in indices),
                store=(
                    str(store.directory) if store is not None else None
                ),
                machine=machine_descriptor,
                batched=self.batched,
                metrics=self.metrics,
                checks=self.checks,
                max_attempts=self.max_attempts,
                checkpoint_every=self.checkpoint_every,
                fail_attempts=fail_attempts,
                sleep_seconds=sleep_seconds,
                spans=self.spans,
                timeout_seconds=self.timeout_seconds,
                trace=(
                    self._trace.to_dict()
                    if self._trace is not None
                    else None
                ),
            )
        return plans

    # -- execution ----------------------------------------------------

    def run(
        self,
        specs: Sequence[RunSpec],
        *,
        machines: MachineConfig | None = None,
        labels: Sequence[str] | None = None,
        store: "ResultStore | str | Path | None" = None,
        resume_from: "ResumeState | str | Path | None" = None,
    ) -> ExecutionReport:
        """Execute ``specs`` across the fleet; the report comes back
        in global submission order, exactly as the single-host engine
        would have returned it."""
        specs = list(specs)
        if machines is not None and not isinstance(machines, MachineConfig):
            raise ValueError(
                "the shard coordinator takes a single machine override; "
                "per-spec machine lists are not shardable"
            )
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        resume = resume_from
        if resume is not None and not isinstance(resume, ResumeState):
            resume = ResumeState.load(resume)
        if resume is not None:
            resume.check_specs(specs)
            if store is None and resume.store is not None:
                store = ResultStore(resume.store)
        keys = [spec.key() for spec in specs]
        if labels is None:
            labels = [ExecutionEngine._default_label(s) for s in specs]
        labels = list(labels)
        if len(labels) != len(specs):
            raise ValueError("specs and labels must align")
        machine_descriptor = ExecutionEngine._machine_descriptor(machines)

        # The fleet's trace context: ambient if a caller installed one,
        # else minted from the planned keyspace.  The coordinator
        # stamps its own brackets with it and ships it to every worker
        # in the plan, so one campaign id correlates the whole fleet.
        context = obs_context.current()
        if context is None:
            context = obs_context.TraceContext(
                campaign=obs_context.campaign_id(keys)
            )
        self._trace = context
        self._shard_metrics = {}

        started = time.perf_counter()
        self._emit_bracket(CampaignStarted(total=len(specs)))
        self._emit_bracket(
            CampaignPlan(
                specs=[dataclasses.asdict(spec) for spec in specs],
                keys=keys,
                labels=labels,
                store=(
                    str(store.directory) if store is not None else None
                ),
                machine=machine_descriptor,
                failure_policy=self.failure_policy.value,
                timeout_seconds=self.timeout_seconds,
                max_attempts=self.max_attempts,
                shards=self.shards,
            )
        )

        owners = partition_indices(keys, self.shards)
        plans = self._build_plans(
            owners, specs, labels, store, machine_descriptor
        )
        if self.status is None:
            self.status = FleetStatus([len(o) for o in owners])
        status = self.status

        shard_logs: dict[int, JsonlEventSink] = {}
        if self.shard_log_base is not None:
            base = Path(self.shard_log_base)
            for shard in plans:
                shard_logs[shard] = JsonlEventSink(
                    base.with_name(f"{base.name}.shard{shard}.jsonl")
                )

        inbox: SimpleQueue = SimpleQueue()
        transports: dict[int, ShardTransport] = {}

        def deliverer(shard: int) -> Callable[[dict | None], None]:
            return lambda message: inbox.put((shard, message))

        for shard, plan in plans.items():
            transport = self.transport_factory()
            transports[shard] = transport
            transport.start(plan, deliverer(shard))

        streams: dict[int, list[Event]] = {s: [] for s in plans}
        outcomes: dict[int, JobOutcome] = {}
        statuses: dict[str, str] = dict.fromkeys(
            (k for k in keys), "pending"
        )
        span_roots: list[obs_tracing.SpanNode] = []
        shard_metrics = self._shard_metrics
        shard_errors: dict[int, str] = {}
        done_shards: set[int] = set()
        open_shards = set(plans)
        terminal_since_checkpoint = 0

        def emit_checkpoint() -> None:
            if self.log_sink is None:
                return
            completed = sorted(
                k for k, s in statuses.items() if s == "completed"
            )
            failed = sorted(k for k, s in statuses.items() if s == "failed")
            pending = sorted(
                k for k, s in statuses.items() if s == "pending"
            )
            checkpoint: Event = CampaignCheckpoint(
                completed=completed, failed=failed, pending=pending
            )
            if self._trace is not None:
                checkpoint = stamp_trace(checkpoint, self._trace.to_dict())
            self.log_sink.emit(checkpoint)

        while open_shards:
            shard, message = inbox.get()
            if message is None:
                open_shards.discard(shard)
                if shard not in done_shards:
                    self._recover_shard(
                        shard,
                        plans[shard],
                        shard_errors.get(shard),
                        specs,
                        labels,
                        store,
                        machines,
                        outcomes,
                        streams,
                        statuses,
                        shard_metrics,
                        status,
                        shard_logs.get(shard),
                        span_roots,
                    )
                status.mark_finished(shard)
                continue
            kind = message.get("msg")
            if kind == "hello":
                status.mark_started(shard)
            elif kind == "event":
                event = event_from_dict(message.get("event", {}))
                if shard in shard_logs:
                    shard_logs[shard].emit(event)
                if isinstance(event, _SHARD_LOCAL_EVENTS):
                    continue
                streams[shard].append(event)
                status.record_event(shard, event)
                self._emit_live(event)
                if (
                    self.spans
                    and isinstance(event, SpanSnapshot)
                    and event.spans
                ):
                    span_roots.append(
                        obs_tracing.SpanNode.from_dict(event.spans)
                    )
                if isinstance(event, TERMINAL_EVENTS):
                    if 0 <= event.index < len(keys):
                        statuses[keys[event.index]] = (
                            "failed"
                            if isinstance(event, JobFailed)
                            else "completed"
                        )
                    terminal_since_checkpoint += 1
                    if (
                        terminal_since_checkpoint % self.checkpoint_every
                        == 0
                    ):
                        emit_checkpoint()
            elif kind == "outcome":
                data = message.get("outcome", {})
                outcome = JobOutcome.from_dict(data)
                outcomes[outcome.index] = outcome
            elif kind == "done":
                done_shards.add(shard)
                shard_metrics[shard] = message.get("metrics")
            elif kind == "error":
                shard_errors[shard] = str(message.get("error"))
            else:
                warnings.warn(
                    f"shard {shard}: ignoring unknown protocol "
                    f"message {kind!r}"
                )

        for sink in shard_logs.values():
            sink.close()

        missing = [i for i in range(len(specs)) if i not in outcomes]
        if missing:
            raise ShardProtocolError(
                f"fleet finished but {len(missing)} job(s) have no "
                f"outcome (first missing index {missing[0]}); shard "
                f"errors: {shard_errors or 'none'}"
            )

        # Canonical merged log: a pure function of the per-shard
        # streams, so shard completion order cannot change it.
        if self.log_sink is not None:
            merged = merge_event_streams(
                [streams[shard] for shard in sorted(streams)]
            )
            for event in merged:
                self.log_sink.emit(event)
            emit_checkpoint()

        ordered = [outcomes[i] for i in range(len(specs))]
        report = ExecutionReport(
            outcomes=ordered,
            wall_seconds=time.perf_counter() - started,
        )
        if self.metrics:
            report.metrics = obs_metrics.merge_snapshots(
                shard_metrics.get(shard) for shard in sorted(plans)
            )
        if self.spans:
            # Fleet-wide span forest: every shipped SpanSnapshot tree
            # grafted through the commutative fold, so the forest is
            # independent of shard completion order.
            report.spans = obs_tracing.merge_trees(span_roots)
        self._emit_bracket(
            CampaignFinished(
                total=len(ordered),
                completed=sum(1 for o in ordered if o.ok),
                cached=sum(1 for o in ordered if o.cached),
                failed=sum(1 for o in ordered if o.error is not None),
                wall_seconds=report.wall_seconds,
            )
        )
        failures = [o for o in ordered if o.error is not None]
        if failures and self.failure_policy is FailurePolicy.FAIL_FAST:
            raise CampaignError(report)
        return report

    def _recover_shard(
        self,
        shard: int,
        plan: ShardPlan,
        error: str | None,
        specs: Sequence[RunSpec],
        labels: Sequence[str],
        store: ResultStore | None,
        machines: MachineConfig | None,
        outcomes: dict[int, JobOutcome],
        streams: dict[int, list[Event]],
        statuses: dict[str, str],
        shard_metrics: dict[int, dict | None],
        status: FleetStatus,
        shard_log: JsonlEventSink | None,
        span_roots: list[obs_tracing.SpanNode] | None = None,
    ) -> None:
        """Re-run a dead worker's unfinished jobs in-process.

        Jobs whose outcomes already arrived are kept; anything else on
        the shard (including work the dead worker may have half done
        -- the shared store makes re-runs cache hits) executes through
        a local engine so the campaign still completes, deterministic
        output included.
        """
        from repro.runtime.events import CallbackSink

        missing = [g for g in plan.indices if g not in outcomes]
        warnings.warn(
            f"shard {shard} worker died before reporting done"
            + (f" ({error})" if error else "")
            + f"; re-running its {len(missing)} unfinished job(s) "
            "in-process"
        )
        if not missing:
            return
        keys = [spec.key() for spec in specs]

        def absorb(event: Event) -> None:
            # The local engine numbers this remnant 0..k-1; remap to
            # the global campaign exactly like a worker would.
            index = getattr(event, "index", None)
            if isinstance(index, int) and 0 <= index < len(missing):
                event = dataclasses.replace(event, index=missing[index])
            if shard_log is not None:
                shard_log.emit(event)
            if isinstance(event, _SHARD_LOCAL_EVENTS):
                return
            streams[shard].append(event)
            status.record_event(shard, event)
            self._emit_live(event)
            if (
                self.spans
                and span_roots is not None
                and isinstance(event, SpanSnapshot)
                and event.spans
            ):
                span_roots.append(
                    obs_tracing.SpanNode.from_dict(event.spans)
                )
            if isinstance(event, TERMINAL_EVENTS):
                if 0 <= event.index < len(keys):
                    statuses[keys[event.index]] = (
                        "failed"
                        if isinstance(event, JobFailed)
                        else "completed"
                    )

        checks = None
        if self.checks:
            from repro.check import default_run_checks

            checks = default_run_checks
        kwargs = dict(
            jobs=1,
            failure_policy=FailurePolicy.COLLECT,
            sinks=[CallbackSink(absorb)],
            checks=checks,
            metrics=self.metrics,
            spans=self.spans,
            checkpoint_every=self.checkpoint_every,
        )
        if self.batched:
            from repro.batch.sweep import BatchedExecutionEngine

            engine = BatchedExecutionEngine(**kwargs)
        else:
            fault = None
            if plan.fail_attempts or plan.sleep_seconds:
                local = {g: i for i, g in enumerate(plan.indices)}
                remnant = {g: i for i, g in enumerate(missing)}
                fault = FaultPlan(
                    fail_attempts={
                        remnant[g]: n
                        for l, n in (plan.fail_attempts or {}).items()
                        for g in [plan.indices[l]]
                        if g in remnant
                    },
                    sleep_seconds={
                        remnant[g]: s
                        for l, s in (plan.sleep_seconds or {}).items()
                        for g in [plan.indices[l]]
                        if g in remnant
                    },
                )
                del local
            engine = ExecutionEngine(
                retry=RetryPolicy(
                    max_attempts=self.max_attempts, base_delay_seconds=0.0
                ),
                fault_plan=fault,
                timeout_seconds=self.timeout_seconds,
                **kwargs,
            )
        # The remnant runs under the dead shard's trace context so its
        # events and postmortems still attribute to that shard.
        recovery_trace = (
            dataclasses.replace(self._trace, shard=shard)
            if self._trace is not None
            else None
        )
        with obs_context.activate(recovery_trace):
            report = engine.run_many(
                [specs[g] for g in missing],
                machines=machines,
                labels=[labels[g] for g in missing],
                store=store,
            )
        for outcome in report.outcomes:
            data = outcome.to_dict()
            data["index"] = missing[outcome.index]
            outcomes[missing[outcome.index]] = JobOutcome.from_dict(data)
        if self.metrics and report.metrics is not None:
            previous = shard_metrics.get(shard)
            shard_metrics[shard] = obs_metrics.merge_snapshots(
                [previous, report.metrics]
            ).to_dict()

