"""Bounded in-process memoization of generated traces.

Design-space sweeps (`repro.runtime` campaigns, `repro.sim` schedule
comparisons, cross-model validation) regenerate the identical
200k-instruction trace for every RunSpec touching the same benchmark.
:func:`cached_generate_trace` memoizes
:func:`repro.workloads.generator.generate_trace` per
``(profile, instructions, seed)`` -- :class:`BenchmarkProfile` is a
frozen (hashable) dataclass, and generation is deterministic in the
key, so a cache hit is exact.

The cache is LRU-bounded by *total cached instructions* (not entry
count) so a sweep over many benchmarks cannot grow memory without
bound; override the default budget with the
``REPRO_TRACE_CACHE_INSTRUCTIONS`` environment variable (``0``
disables caching).  Cached traces are shared between callers, so
traces must be treated as read-only -- which the core models and
:meth:`repro.isa.trace.Trace.slice` already guarantee.
"""

from __future__ import annotations

import os
from collections import OrderedDict

from repro.isa.trace import Trace
from repro.workloads.characteristics import BenchmarkProfile
from repro.workloads.generator import generate_trace

#: Default total-instruction budget across all cached traces (~4M
#: instructions: tens of MB, a full fig6-style benchmark suite at the
#: standard 200k-instruction trace length).
DEFAULT_CACHE_INSTRUCTIONS = 4_000_000

_ENV_VAR = "REPRO_TRACE_CACHE_INSTRUCTIONS"

_cache: OrderedDict[tuple, Trace] = OrderedDict()
_cached_instructions = 0
_hits = 0
_misses = 0


def _budget() -> int:
    raw = os.environ.get(_ENV_VAR)
    if raw is None:
        return DEFAULT_CACHE_INSTRUCTIONS
    try:
        return max(int(raw), 0)
    except ValueError:
        return DEFAULT_CACHE_INSTRUCTIONS


def cached_generate_trace(
    profile: BenchmarkProfile,
    instructions: int | None = None,
    seed: int = 0,
) -> Trace:
    """Drop-in memoized :func:`generate_trace`.

    Returns the cached :class:`Trace` for a repeated
    ``(profile, instructions, seed)`` key; the result must be treated
    as read-only.
    """
    global _cached_instructions, _hits, _misses
    budget = _budget()
    if budget <= 0:
        return generate_trace(profile, instructions, seed=seed)
    key = (profile, instructions, seed)
    trace = _cache.get(key)
    if trace is not None:
        _cache.move_to_end(key)
        _hits += 1
        return trace
    _misses += 1
    trace = generate_trace(profile, instructions, seed=seed)
    _cache[key] = trace
    _cached_instructions += len(trace)
    while _cached_instructions > budget and len(_cache) > 1:
        _, evicted = _cache.popitem(last=False)
        _cached_instructions -= len(evicted)
    return trace


def cache_stats() -> dict[str, int]:
    """Current cache occupancy and hit/miss counters."""
    return {
        "entries": len(_cache),
        "instructions": _cached_instructions,
        "hits": _hits,
        "misses": _misses,
    }


def clear_cache() -> None:
    """Drop all cached traces and reset the counters."""
    global _cached_instructions, _hits, _misses
    _cache.clear()
    _cached_instructions = 0
    _hits = 0
    _misses = 0
