"""Performance micro-benchmarks for the simulation hot path.

Times the layers the `repro.kernels` work optimizes -- trace
generation (and the trace cache), batched cache access, the OoO and
in-order window kernels (against their straight-line references), a
small end-to-end sweep, and the cross-run batched engine
(:mod:`repro.batch`) at batch sizes 1/64/1024 against the scalar
engine (``--min-batch-speedup`` gates the 1024 point) -- and emits a
machine-readable report
(``BENCH_PERF.json``) so the performance trajectory is tracked
PR-over-PR.  Run via ``repro bench`` or
``python benchmarks/bench_perf.py``.

The regression gate is the *in-process* kernel-vs-reference speedup
(``--min-ooo-speedup``), which is machine-independent; absolute
instructions/second are reported for trend tracking alongside the
recorded pre-kernel baseline.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

#: Throughputs of the pre-kernel implementations, measured on the
#: machine that developed the kernel layer (scalar cache walks,
#: per-instruction enum construction; commit eeee08a).  Kept static so
#: the kernel-vs-pre-PR speedup in the report has a fixed denominator.
PRE_PR_BASELINE = {
    "ooo_window_insn_per_s": 163_000,
    "inorder_window_insn_per_s": 95_000,
    "note": (
        "pre-kernel simulate_window/run_cycles throughput at 200k "
        "instructions (soplex, seed 0), measured at commit eeee08a"
    ),
}

#: Benchmark/trace used by the micro-benchmarks.
BENCH_WORKLOAD = "soplex"


def _best(fn, repeats: int) -> tuple[float, object]:
    """Best-of-N wall-clock of ``fn()`` (returns last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_bench(quick: bool = False) -> dict:
    """Run the perf-bench suite; returns the report dictionary."""
    from repro.config import MemoryConfig, big_core_config, small_core_config
    from repro.cores.base import ISOLATED
    from repro.cores.inorder import InOrderCoreModel
    from repro.cores.ooo import OutOfOrderCoreModel
    from repro.cores.tracebase import TraceApplication
    from repro.kernels.reference import (
        reference_inorder_run,
        reference_ooo_window,
    )
    from repro.kernels.trace_cache import (
        cache_stats,
        cached_generate_trace,
        clear_cache,
    )
    from repro.memory.cache import SetAssociativeCache
    from repro.workloads import benchmark
    from repro.workloads.generator import generate_trace

    instructions = 60_000 if quick else 200_000
    repeats = 1 if quick else 3
    profile = benchmark(BENCH_WORKLOAD)
    results: dict = {}

    # -- trace generation and the trace cache --
    gen_s, trace = _best(
        lambda: generate_trace(profile, instructions, seed=0), repeats
    )
    results["trace_generation"] = {
        "instructions": instructions,
        "wall_s": gen_s,
        "insn_per_s": instructions / gen_s,
    }
    clear_cache()
    cached_generate_trace(profile, instructions, seed=0)  # warm
    hit_s, _ = _best(
        lambda: cached_generate_trace(profile, instructions, seed=0),
        max(repeats, 3),
    )
    results["trace_cache_hit"] = {
        "wall_s": hit_s,
        "speedup_vs_generate": gen_s / max(hit_s, 1e-9),
        "stats": cache_stats(),
    }
    clear_cache()

    # -- batched cache access vs scalar --
    app = TraceApplication(trace)
    addresses = trace.addresses[trace.addresses != 0]
    l1_config = MemoryConfig().l1d

    def scalar_cache():
        cache = SetAssociativeCache(l1_config, "bench")
        access = cache.access
        for a in addresses.tolist():
            access(a)
        return cache

    def batch_cache():
        cache = SetAssociativeCache(l1_config, "bench")
        cache.access_batch(addresses)
        return cache

    scalar_s, _ = _best(scalar_cache, repeats)
    batch_s, _ = _best(batch_cache, repeats)
    results["cache_access"] = {
        "accesses": int(len(addresses)),
        "scalar_wall_s": scalar_s,
        "batch_wall_s": batch_s,
        "scalar_accesses_per_s": len(addresses) / scalar_s,
        "batch_accesses_per_s": len(addresses) / batch_s,
        "batch_speedup": scalar_s / batch_s,
    }

    # -- OoO window: kernel vs straight-line reference --
    budget = float(instructions)

    def ooo_kernel():
        model = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        return model.simulate_window(app, 0, budget, ISOLATED)

    def ooo_reference():
        model = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        return reference_ooo_window(model, app, 0, budget, ISOLATED)

    kernel_s, timing = _best(ooo_kernel, repeats)
    reference_s, _ = _best(ooo_reference, repeats)
    ooo_insn_per_s = timing.committed / kernel_s
    results["ooo_window"] = {
        "committed": timing.committed,
        "kernel_wall_s": kernel_s,
        "reference_wall_s": reference_s,
        "kernel_insn_per_s": ooo_insn_per_s,
        "reference_insn_per_s": timing.committed / reference_s,
        "kernel_vs_reference_speedup": reference_s / kernel_s,
        "kernel_vs_pre_pr_speedup": (
            ooo_insn_per_s / PRE_PR_BASELINE["ooo_window_insn_per_s"]
        ),
    }

    # -- observability overhead on both kernel paths --
    # "plain" calls the kernel function directly (no wrappers at all);
    # "disabled" goes through the model method, whose span()/ACTIVE
    # checks AND the dormant flight-recorder + trace-context hooks are
    # compiled in but off; "enabled" runs the same call with a live
    # tracer, metrics registry, and armed flight recorder.  The gate
    # (--max-disabled-overhead) bounds the cost of shipping the hooks
    # on the OoO and in-order paths alike.
    from repro.kernels.window import inorder_run_cycles, ooo_simulate_window
    from repro.obs import flight as obs_flight
    from repro.obs import metrics as obs_metrics
    from repro.obs import tracing as obs_tracing

    overhead_repeats = max(repeats, 5)

    def obs_plain():
        model = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        return ooo_simulate_window(model, app, 0, budget, ISOLATED)

    def obs_disabled():
        model = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        return model.simulate_window(app, 0, budget, ISOLATED)

    def obs_enabled():
        model = OutOfOrderCoreModel(big_core_config(), MemoryConfig())
        with obs_metrics.collecting(), obs_tracing.collecting(), \
                obs_flight.recording():
            return model.simulate_window(app, 0, budget, ISOLATED)

    inorder_overhead_budget = 2.0 * budget

    def inorder_obs_plain():
        model = InOrderCoreModel(small_core_config(), MemoryConfig())
        return inorder_run_cycles(
            model, app, 0, inorder_overhead_budget, ISOLATED
        )

    def inorder_obs_disabled():
        model = InOrderCoreModel(small_core_config(), MemoryConfig())
        return model.run_cycles(app, 0, inorder_overhead_budget, ISOLATED)

    def inorder_obs_enabled():
        model = InOrderCoreModel(small_core_config(), MemoryConfig())
        with obs_metrics.collecting(), obs_tracing.collecting(), \
                obs_flight.recording():
            return model.run_cycles(app, 0, inorder_overhead_budget, ISOLATED)

    plain_s, _ = _best(obs_plain, overhead_repeats)
    disabled_s, _ = _best(obs_disabled, overhead_repeats)
    enabled_s, _ = _best(obs_enabled, overhead_repeats)
    in_plain_s, _ = _best(inorder_obs_plain, overhead_repeats)
    in_disabled_s, _ = _best(inorder_obs_disabled, overhead_repeats)
    in_enabled_s, _ = _best(inorder_obs_enabled, overhead_repeats)
    results["span_overhead"] = {
        "committed": timing.committed,
        "repeats": overhead_repeats,
        "plain_wall_s": plain_s,
        "disabled_wall_s": disabled_s,
        "enabled_wall_s": enabled_s,
        "disabled_overhead": disabled_s / plain_s - 1.0,
        "enabled_overhead": enabled_s / plain_s - 1.0,
        "inorder_plain_wall_s": in_plain_s,
        "inorder_disabled_wall_s": in_disabled_s,
        "inorder_enabled_wall_s": in_enabled_s,
        "inorder_disabled_overhead": in_disabled_s / in_plain_s - 1.0,
        "inorder_enabled_overhead": in_enabled_s / in_plain_s - 1.0,
    }

    # -- in-order window: kernel vs straight-line reference --
    inorder_budget = 2.0 * budget

    def inorder_kernel():
        model = InOrderCoreModel(small_core_config(), MemoryConfig())
        return model.run_cycles(app, 0, inorder_budget, ISOLATED)

    def inorder_reference():
        model = InOrderCoreModel(small_core_config(), MemoryConfig())
        return reference_inorder_run(model, app, 0, inorder_budget, ISOLATED)

    kernel_s, quantum = _best(inorder_kernel, repeats)
    reference_s, _ = _best(inorder_reference, repeats)
    inorder_insn_per_s = quantum.instructions / kernel_s
    results["inorder_window"] = {
        "committed": quantum.instructions,
        "kernel_wall_s": kernel_s,
        "reference_wall_s": reference_s,
        "kernel_insn_per_s": inorder_insn_per_s,
        "reference_insn_per_s": quantum.instructions / reference_s,
        "kernel_vs_reference_speedup": reference_s / kernel_s,
        "kernel_vs_pre_pr_speedup": (
            inorder_insn_per_s
            / PRE_PR_BASELINE["inorder_window_insn_per_s"]
        ),
    }

    # -- end-to-end: a small mechanistic sweep --
    from repro.sim.experiment import sweep
    from repro.workloads.mixes import generate_workloads
    from repro.config import STANDARD_MACHINES

    machine = STANDARD_MACHINES["1B1S"]()
    mixes = generate_workloads(machine.num_cores)[: (1 if quick else 3)]
    sweep_instructions = 5_000_000 if quick else 20_000_000
    t0 = time.perf_counter()
    sweep_results = sweep(
        machine,
        mixes,
        ("random", "reliability"),
        instructions=sweep_instructions,
        jobs=1,
    )
    sweep_s = time.perf_counter() - t0
    runs = sum(len(v) for v in sweep_results.values())
    results["end_to_end_sweep"] = {
        "machine": machine.name,
        "runs": runs,
        "instructions_per_run": sweep_instructions,
        "wall_s": sweep_s,
        "runs_per_s": runs / sweep_s,
    }

    # -- cross-run batched sweep vs the scalar engine --
    # Throughput of repro.batch at batch sizes 1/64/1024 against a
    # scalar-engine baseline over identical requests.  Batch size 1 is
    # expected to be *slower* (array setup dominates one run) and is
    # reported for honesty; the regression gate (--min-batch-speedup)
    # applies at batch size 1024, where the cross-run amortization
    # pays off.
    from repro.ace.counters import AceCounterMode
    from repro.batch.sweep import BatchRunRequest, run_workload_batch
    from repro.sim.multicore import MulticoreSimulation
    from repro.sim.experiment import make_scheduler

    batch_machine = STANDARD_MACHINES["2B2S"]()
    batch_instructions = 300_000 if quick else 1_000_000
    batch_mixes = generate_workloads(batch_machine.num_cores)
    batch_schedulers = ("random", "performance", "reliability")

    def batch_request(i: int) -> BatchRunRequest:
        mix = batch_mixes[i % len(batch_mixes)]
        return BatchRunRequest(
            machine=batch_machine,
            benchmarks=mix.benchmarks,
            scheduler=batch_schedulers[i % len(batch_schedulers)],
            instructions=batch_instructions,
            seed=i,
            counter_mode=AceCounterMode.FULL,
        )

    def scalar_run(req: BatchRunRequest):
        profiles = [
            benchmark(name).scaled(req.instructions)
            for name in req.benchmarks
        ]
        scheduler = make_scheduler(
            req.scheduler, req.machine, len(profiles), req.seed
        )
        return MulticoreSimulation(
            req.machine, profiles, scheduler, counter_mode=req.counter_mode
        ).run()

    scalar_count = 4 if quick else 8
    t0 = time.perf_counter()
    for i in range(scalar_count):
        scalar_run(batch_request(i))
    scalar_s = time.perf_counter() - t0
    scalar_runs_per_s = scalar_count / scalar_s
    results["batch"] = {
        "machine": batch_machine.name,
        "instructions_per_run": batch_instructions,
        "scalar": {
            "runs": scalar_count,
            "wall_s": scalar_s,
            "runs_per_s": scalar_runs_per_s,
        },
    }
    for size in (1, 64, 1024):
        requests = [batch_request(i) for i in range(size)]
        t0 = time.perf_counter()
        run_workload_batch(requests)
        wall = time.perf_counter() - t0
        results["batch"][f"batch_{size}"] = {
            "runs": size,
            "wall_s": wall,
            "runs_per_s": size / wall,
            "speedup_vs_scalar": (size / wall) / scalar_runs_per_s,
        }

    # -- sharded campaign at 1/2/4 worker processes --
    # The same harness (coordinator + pipe workers) at every count,
    # so shards_1 honestly pays the worker-spawn overhead the others
    # amortize.  The regression gate (--min-shard-speedup) applies at
    # 2 shards; 4 is reported for the scaling curve.  Sized so the
    # serial compute (~10s quick) dominates worker spawn
    # (~0.6s/worker): on a >= 2-core host the model predicts ~1.9x at
    # 2 shards, leaving headroom over the 1.6x CI floor.  On a
    # single-core host the speedup honestly reads <= 1.0 (workers
    # time-slice one CPU) -- apply the gate only where cores exist.
    from repro.runtime.shard import ShardCoordinator
    from repro.sim.experiment import sweep_specs

    shard_machine = STANDARD_MACHINES["1B1S"]()
    shard_instructions = 500_000_000 if quick else 1_000_000_000
    shard_mixes = generate_workloads(shard_machine.num_cores)
    shard_specs, shard_labels = sweep_specs(
        shard_machine, shard_mixes, instructions=shard_instructions
    )
    results["shard"] = {
        "machine": shard_machine.name,
        "runs": len(shard_specs),
        "instructions_per_run": shard_instructions,
    }
    shard_base_runs_per_s = None
    for count in (1, 2, 4):
        t0 = time.perf_counter()
        ShardCoordinator(count).run(
            shard_specs, machines=shard_machine, labels=shard_labels
        )
        wall = time.perf_counter() - t0
        runs_per_s = len(shard_specs) / wall
        if shard_base_runs_per_s is None:
            shard_base_runs_per_s = runs_per_s
        results["shard"][f"shards_{count}"] = {
            "runs": len(shard_specs),
            "wall_s": wall,
            "runs_per_s": runs_per_s,
            "speedup_vs_1": runs_per_s / shard_base_runs_per_s,
        }

    return {
        "schema": 1,
        "workload": BENCH_WORKLOAD,
        "quick": quick,
        "python": platform.python_version(),
        "pre_pr_baseline": PRE_PR_BASELINE,
        "results": results,
    }


def format_report(report: dict) -> str:
    """Human-readable summary of a bench report."""
    r = report["results"]
    lines = [
        f"perf bench ({'quick' if report['quick'] else 'full'}, "
        f"{report['workload']}, python {report['python']})",
        (
            f"  trace generation   "
            f"{r['trace_generation']['insn_per_s'] / 1e3:9.0f}k insn/s"
        ),
        (
            f"  trace cache hit    "
            f"{r['trace_cache_hit']['speedup_vs_generate']:9.0f}x "
            "vs generation"
        ),
        (
            f"  cache access batch "
            f"{r['cache_access']['batch_accesses_per_s'] / 1e6:9.2f}M/s "
            f"({r['cache_access']['batch_speedup']:.2f}x scalar)"
        ),
    ]
    for key, label in (
        ("ooo_window", "OoO window    "),
        ("inorder_window", "in-order window"),
    ):
        lines.append(
            f"  {label}    "
            f"{r[key]['kernel_insn_per_s'] / 1e3:7.0f}k insn/s "
            f"({r[key]['kernel_vs_reference_speedup']:.2f}x reference, "
            f"{r[key]['kernel_vs_pre_pr_speedup']:.2f}x pre-kernel "
            "baseline)"
        )
    lines.append(
        f"  obs overhead       "
        f"{100 * r['span_overhead']['disabled_overhead']:+9.2f}% disabled, "
        f"{100 * r['span_overhead']['enabled_overhead']:+.2f}% enabled (OoO)"
    )
    if "inorder_disabled_overhead" in r["span_overhead"]:
        lines.append(
            f"                     "
            f"{100 * r['span_overhead']['inorder_disabled_overhead']:+9.2f}"
            f"% disabled, "
            f"{100 * r['span_overhead']['inorder_enabled_overhead']:+.2f}"
            f"% enabled (in-order)"
        )
    lines.append(
        f"  end-to-end sweep   "
        f"{r['end_to_end_sweep']['runs_per_s']:9.2f} runs/s "
        f"({r['end_to_end_sweep']['runs']} runs, "
        f"{r['end_to_end_sweep']['wall_s']:.2f}s)"
    )
    if "batch" in r:
        b = r["batch"]
        lines.append(
            f"  batched sweep      "
            f"{b['batch_1024']['runs_per_s']:9.0f} runs/s @1024 "
            f"({b['batch_1024']['speedup_vs_scalar']:.1f}x scalar; "
            f"64: {b['batch_64']['speedup_vs_scalar']:.1f}x, "
            f"1: {b['batch_1']['speedup_vs_scalar']:.2f}x)"
        )
    if "shard" in r:
        s = r["shard"]
        lines.append(
            f"  sharded campaign   "
            f"{s['shards_2']['runs_per_s']:9.2f} runs/s @2 shards "
            f"({s['shards_2']['speedup_vs_1']:.2f}x 1 shard; "
            f"4: {s['shards_4']['speedup_vs_1']:.2f}x)"
        )
    return "\n".join(lines)


def write_report(report: dict, path: str | Path) -> Path:
    """Write a bench report as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
