"""Straight-line reference implementations of the window models.

These are the pre-kernel per-instruction implementations of the
out-of-order :meth:`~repro.cores.ooo.OutOfOrderCoreModel.simulate_window`
and the in-order :meth:`~repro.cores.inorder.InOrderCoreModel.run_cycles`,
kept verbatim as the correctness oracle for the vectorized kernels in
:mod:`repro.kernels.window`.  They go through the scalar
:meth:`~repro.memory.hierarchy.CacheHierarchy.access_data` path, one
enum construction and one cache call per instruction.

The differential fuzzer (:func:`repro.check.differential.fuzz`) and
the equivalence tests run fuzzed windows through both implementations
and require element-wise identical timings, identical cache statistics
and identical committed counts; `repro bench` times both to report the
kernel speedup.  Do not "optimize" this module -- its slowness is the
baseline being measured against.
"""

from __future__ import annotations

import numpy as np

from repro.config.structures import StructureKind
from repro.cores.base import MemoryEnvironment, QuantumResult
from repro.isa.instruction import (
    InstructionClass,
    fu_bits_table,
    latency_table,
)

#: Maximum instructions attempted per cycle of budget (dispatch width).
_WINDOW_SLACK = 1024

#: Cycles a committed store occupies the in-order store queue.
_STORE_DRAIN = 3.0


def reference_ooo_window(
    model,
    app,
    start_instruction: int,
    cycles: float,
    env: MemoryEnvironment,
):
    """Pre-kernel per-instruction OoO window timing computation.

    Returns the same :class:`~repro.cores.ooo.WindowTiming` the
    vectorized kernel produces; see the module docstring.
    """
    from repro.cores.ooo import WindowTiming

    core = model.core
    assert core.rob is not None and core.load_queue is not None
    budget = float(cycles)
    window = app.window(
        start_instruction, int(budget * core.width) + _WINDOW_SLACK
    )
    n = len(window)
    hierarchy = model.hierarchy_for(app)
    dram_extra = (
        model.dram_latency_cycles(env) - hierarchy.dram_latency_cycles
    )

    latencies = latency_table()
    width = core.width
    rob_size = core.rob.entries
    iq_size = core.issue_queue.entries
    lq_size = core.load_queue.entries
    sq_size = core.store_queue.entries
    depth = core.frontend_depth
    icache_penalty = model.memory.l2.latency_cycles

    classes = window.classes
    dep1 = window.dep1
    dep2 = window.dep2
    addresses = window.addresses
    mispredicted = window.mispredicted
    icache_miss = window.icache_miss

    dispatch = np.zeros(n, dtype=np.float64)
    issue = np.zeros(n, dtype=np.float64)
    finish = np.zeros(n, dtype=np.float64)
    commit = np.zeros(n, dtype=np.float64)
    latency_out = np.zeros(n, dtype=np.float64)
    load_ring: list[int] = []
    store_ring: list[int] = []
    div_free = {InstructionClass.INT_DIV: 0.0, InstructionClass.FP_DIV: 0.0}

    fetch_ready = 0.0
    committed = 0
    end_time = 0.0
    for i in range(n):
        cls = InstructionClass(classes[i])
        if icache_miss[i]:
            fetch_ready += icache_penalty
        t_dispatch = max(
            fetch_ready,
            dispatch[i - width] + 1.0 if i >= width else 0.0,
        )
        if i >= rob_size:
            t_dispatch = max(t_dispatch, commit[i - rob_size])
        if i >= iq_size:
            t_dispatch = max(t_dispatch, issue[i - iq_size])
        if cls == InstructionClass.LOAD and len(load_ring) >= lq_size:
            t_dispatch = max(t_dispatch, commit[load_ring[-lq_size]])
        if cls == InstructionClass.STORE and len(store_ring) >= sq_size:
            t_dispatch = max(t_dispatch, commit[store_ring[-sq_size]])
        dispatch[i] = t_dispatch

        ready = t_dispatch + 1.0
        if dep1[i]:
            ready = max(ready, finish[i - dep1[i]])
        if dep2[i]:
            ready = max(ready, finish[i - dep2[i]])
        if cls in div_free:
            ready = max(ready, div_free[cls])
        issue[i] = ready

        if cls == InstructionClass.LOAD:
            outcome = hierarchy.access_data(int(addresses[i]))
            latency = outcome.latency_cycles
            if outcome.level == "dram":
                latency += dram_extra
            load_ring.append(i)
        elif cls == InstructionClass.STORE:
            # Stores write back at commit; the cache access is for
            # hit/miss statistics, the pipeline sees unit latency.
            hierarchy.access_data(int(addresses[i]))
            latency = float(latencies[cls])
            store_ring.append(i)
        else:
            latency = float(latencies[cls])
        finish[i] = issue[i] + latency
        latency_out[i] = latency
        if cls in div_free:
            div_free[cls] = finish[i]
        if mispredicted[i]:
            fetch_ready = max(fetch_ready, finish[i] + depth)

        t_commit = finish[i] + 1.0
        if i >= 1:
            t_commit = max(t_commit, commit[i - 1])
        if i >= width:
            t_commit = max(t_commit, commit[i - width] + 1.0)
        commit[i] = t_commit
        if t_commit > budget:
            break
        committed = i + 1
        end_time = t_commit

    elapsed = budget if committed < n else max(end_time, 1.0)
    return WindowTiming(
        classes=classes[:committed].copy(),
        dispatch=dispatch[:committed],
        issue=issue[:committed],
        finish=finish[:committed],
        commit=commit[:committed],
        latency=latency_out[:committed],
        mispredicted=mispredicted[:committed].copy(),
        committed=committed,
        elapsed_cycles=elapsed,
    )


def reference_inorder_run(
    model,
    app,
    start_instruction: int,
    cycles: float,
    env: MemoryEnvironment,
) -> QuantumResult:
    """Pre-kernel per-instruction in-order scoreboard execution."""
    from repro.cores.inorder import (
        TIMESTAMP_CLIP,
        _ARCH_REG_LIVE_FRACTION,
    )

    if cycles <= 0:
        return QuantumResult.zero()
    core = model.core
    assert core.pipeline_latches is not None
    budget = float(cycles)
    window = app.window(
        start_instruction, int(budget * core.width) + _WINDOW_SLACK
    )
    n = len(window)
    if n == 0:
        return QuantumResult(instructions=0, cycles=budget)
    hierarchy = model.hierarchy_for(app)
    dram_extra = model.dram_latency_cycles(env) - hierarchy.dram_latency_cycles
    l3_start = hierarchy.l3_accesses
    dram_start = hierarchy.dram_accesses

    latencies = latency_table()
    fu_bits = fu_bits_table()
    width = core.width
    depth = core.frontend_depth
    latch_bits = core.pipeline_latches.bits_per_entry
    iq_bits = core.issue_queue.bits_per_entry
    sq_bits = core.store_queue.bits_per_entry
    icache_penalty = model.memory.l2.latency_cycles

    classes = window.classes
    dep1 = window.dep1
    dep2 = window.dep2
    addresses = window.addresses
    mispredicted = window.mispredicted
    icache_miss = window.icache_miss

    fetch = np.zeros(n, dtype=np.float64)
    issue = np.zeros(n, dtype=np.float64)
    finish = np.zeros(n, dtype=np.float64)
    wb = np.zeros(n, dtype=np.float64)
    div_free = {InstructionClass.INT_DIV: 0.0, InstructionClass.FP_DIV: 0.0}
    latch_slots = core.pipeline_latches.entries

    ace = {
        StructureKind.PIPELINE_LATCHES: 0.0,
        StructureKind.ISSUE_QUEUE: 0.0,
        StructureKind.STORE_QUEUE: 0.0,
        StructureKind.REGISTER_FILE: 0.0,
        StructureKind.FUNCTIONAL_UNITS: 0.0,
    }
    occupancy = dict(ace)

    fetch_ready = 0.0
    committed = 0
    end_time = 0.0
    for i in range(n):
        cls = InstructionClass(classes[i])
        if icache_miss[i]:
            fetch_ready += icache_penalty
        # Fetch: at most `width` per cycle, and only when a
        # pipeline-latch slot is free (slots are held from fetch
        # to writeback, so stalls back-pressure the front end and
        # instructions sit in the latches during them).
        t_fetch = max(
            fetch_ready,
            fetch[i - width] + 1.0 if i >= width else 0.0,
        )
        if i >= latch_slots:
            t_fetch = max(t_fetch, wb[i - latch_slots])
        fetch[i] = t_fetch

        # In-order issue after traversing the front-end stages:
        # after the previous instruction, at most `width` per
        # cycle, once operands are ready (stall-on-use).
        t_issue = max(t_fetch + depth - 2.0, issue[i - 1] if i >= 1 else 0.0)
        if i >= width:
            t_issue = max(t_issue, issue[i - width] + 1.0)
        if dep1[i]:
            t_issue = max(t_issue, finish[i - dep1[i]])
        if dep2[i]:
            t_issue = max(t_issue, finish[i - dep2[i]])
        if cls in div_free:
            t_issue = max(t_issue, div_free[cls])
        issue[i] = t_issue

        if cls == InstructionClass.LOAD:
            outcome = hierarchy.access_data(int(addresses[i]))
            latency = outcome.latency_cycles
            if outcome.level == "dram":
                latency += dram_extra
        elif cls == InstructionClass.STORE:
            hierarchy.access_data(int(addresses[i]))
            latency = float(latencies[cls])
        else:
            latency = float(latencies[cls])
        finish[i] = t_issue + latency
        if cls in div_free:
            div_free[cls] = finish[i]
        if mispredicted[i]:
            fetch_ready = max(fetch_ready, finish[i] + depth)

        writeback = finish[i] + 1.0
        wb[i] = writeback
        if writeback > budget:
            break
        committed = i + 1
        end_time = writeback

        # -- ACE accounting: fetch-to-writeback in the latches --
        residency = min(writeback - t_fetch, TIMESTAMP_CLIP)
        is_nop = cls == InstructionClass.NOP
        occupancy[StructureKind.PIPELINE_LATCHES] += residency * latch_bits
        if not is_nop:
            ace[StructureKind.PIPELINE_LATCHES] += residency * latch_bits
            fu_res = min(latency, TIMESTAMP_CLIP) * fu_bits[cls]
            ace[StructureKind.FUNCTIONAL_UNITS] += fu_res
            occupancy[StructureKind.FUNCTIONAL_UNITS] += fu_res
            iq_res = min(max(t_issue - t_fetch - 2.0, 0.0), TIMESTAMP_CLIP)
            ace[StructureKind.ISSUE_QUEUE] += iq_res * iq_bits
            occupancy[StructureKind.ISSUE_QUEUE] += iq_res * iq_bits
        if cls == InstructionClass.STORE:
            sq_res = _STORE_DRAIN * sq_bits
            ace[StructureKind.STORE_QUEUE] += sq_res
            occupancy[StructureKind.STORE_QUEUE] += sq_res

    elapsed = budget if committed < n else max(end_time, 1.0)
    arch = (
        core.register_file.arch_bits * _ARCH_REG_LIVE_FRACTION * elapsed
    )
    ace[StructureKind.REGISTER_FILE] += arch
    occupancy[StructureKind.REGISTER_FILE] += arch
    return QuantumResult(
        instructions=committed,
        cycles=elapsed,
        ace_bit_cycles=ace,
        occupancy_bit_cycles=occupancy,
        memory_accesses=float(hierarchy.dram_accesses - dram_start),
        l3_accesses=float(hierarchy.l3_accesses - l3_start),
        branch_mispredictions=float(mispredicted[:committed].sum()),
    )
