"""Vectorized hot-path kernels for the trace-driven simulation.

- :mod:`repro.kernels.window` -- batched/precomputed window kernels
  backing ``OutOfOrderCoreModel.simulate_window`` and
  ``InOrderCoreModel.run_cycles``.
- :mod:`repro.kernels.reference` -- the pre-kernel straight-line
  implementations, kept verbatim as correctness oracles.
- :mod:`repro.kernels.trace_cache` -- bounded memoization of
  ``generate_trace`` for sweeps.

See docs/performance.md for the design and measured speedups.
"""

from repro.kernels.trace_cache import (
    cache_stats,
    cached_generate_trace,
    clear_cache,
)
from repro.kernels.window import inorder_run_cycles, ooo_simulate_window

__all__ = [
    "cache_stats",
    "cached_generate_trace",
    "clear_cache",
    "inorder_run_cycles",
    "ooo_simulate_window",
]
