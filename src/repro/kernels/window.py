"""Vectorized window kernels for the trace-driven core models.

The pre-kernel implementations (kept verbatim in
:mod:`repro.kernels.reference`) spent most of their time on
per-instruction Python overhead: one :class:`InstructionClass` enum
construction, several numpy scalar reads, and one scalar cache walk
per load/store.  The kernels here restructure
``simulate_window``/``run_cycles`` into:

1. a **batched precompute pass** per chunk -- instruction-class codes,
   static latencies, I-cache penalties and dependency distances are
   extracted as plain Python lists in vectorized numpy operations, and
   all of the chunk's load/store addresses run through
   :meth:`~repro.memory.hierarchy.CacheHierarchy.access_data_batch`
   in one pass; then
2. a **minimal max-plus recurrence loop** over local-variable-bound
   floats -- no enum construction, no dict lookups, no numpy scalar
   round-trips.

Results are identical to the reference implementations: the
recurrence performs the same float operations in the same order, and
the cache state is kept exact across the budget break by rolling back
the batched accesses that over-ran the break instruction (the
reference accesses the cache for instructions up to and including the
first *uncommitted* instruction; see docs/performance.md and
DESIGN.md).  The differential fuzzer cross-checks kernel vs reference
on every ``repro check`` run.
"""

from __future__ import annotations

import numpy as np

from repro.config.structures import StructureKind
from repro.cores.base import MemoryEnvironment, QuantumResult
from repro.isa.instruction import (
    NUM_CLASSES,
    InstructionClass,
    fu_bits_table,
    latency_table,
)
from repro.obs import metrics as obs_metrics

#: Maximum instructions attempted per cycle of budget (dispatch width).
_WINDOW_SLACK = 1024

#: Cycles a committed store occupies the in-order store queue.
_STORE_DRAIN = 3.0

#: Instructions per precompute/recurrence chunk.  Bounds both the
#: batched-access overrun past the budget break (rolled back, but
#: wasted work) and the transient memory of the per-chunk buffers.
_CHUNK = 4096

#: Class -> kernel kind code: 0 plain, 1 load, 2 store, 3 integer
#: divide, 4 floating-point divide (the classes needing queue or
#: unpipelined-divider handling in the recurrence).
_KIND = np.zeros(NUM_CLASSES, dtype=np.int8)
_KIND[InstructionClass.LOAD] = 1
_KIND[InstructionClass.STORE] = 2
_KIND[InstructionClass.INT_DIV] = 3
_KIND[InstructionClass.FP_DIV] = 4

#: Static execution latency per class, as float64 (exactly the
#: ``float(latency_table()[cls])`` values of the reference).
_STATIC_LATENCY = latency_table().astype(np.float64)


def _chunk_inputs(window, c0, c1, hierarchy, icache_penalty, dram_extra):
    """Precompute one chunk's per-instruction kernel inputs.

    Runs the chunk's load/store addresses through the batched cache
    walk (recording an undo journal) and returns plain Python lists
    for the recurrence plus what a budget-break rollback needs.
    """
    kind = _KIND[window.classes[c0:c1]]
    eff_lat = _STATIC_LATENCY[window.classes[c0:c1]]
    mem_rel = np.nonzero((kind == 1) | (kind == 2))[0]
    journal: list = []
    levels = None
    if mem_rel.size:
        addresses = window.addresses[c0:c1][mem_rel]
        lat_mem, levels = hierarchy.access_data_batch(addresses, journal)
        is_load = kind[mem_rel] == 1
        if is_load.any():
            load_lat = lat_mem[is_load]
            if dram_extra:
                load_lat = load_lat + np.where(
                    levels[is_load] == 3, dram_extra, 0.0
                )
            eff_lat[mem_rel[is_load]] = load_lat
    icx = np.where(
        window.icache_miss[c0:c1], icache_penalty, 0.0
    ).tolist()
    return (
        kind.tolist(),
        eff_lat,
        icx,
        window.dep1[c0:c1].tolist(),
        window.dep2[c0:c1].tolist(),
        window.mispredicted[c0:c1].tolist(),
        mem_rel,
        journal,
        levels,
    )


def _rollback_overrun(hierarchy, mem_rel, journal, levels, c0, break_abs):
    """Undo batched accesses of instructions past the budget break.

    The reference implementation accesses the cache for instructions
    up to *and including* the break instruction (the first
    uncommitted one); everything later in the chunk is rolled back.
    """
    if levels is None:
        return
    keep = int(np.searchsorted(mem_rel, break_abs - c0, side="right"))
    if keep < len(journal):
        hierarchy.rollback_data(journal, levels, keep)


def ooo_simulate_window(model, app, start_instruction, cycles, env):
    """Kernelized out-of-order window timing computation.

    Produces a :class:`~repro.cores.ooo.WindowTiming` element-wise
    identical to :func:`repro.kernels.reference.reference_ooo_window`
    and leaves the cache hierarchy in the identical state.
    """
    from repro.cores.ooo import WindowTiming

    core = model.core
    assert core.rob is not None and core.load_queue is not None
    budget = float(cycles)
    window = app.window(
        start_instruction, int(budget * core.width) + _WINDOW_SLACK
    )
    n = len(window)
    hierarchy = model.hierarchy_for(app)
    dram_extra = (
        model.dram_latency_cycles(env) - hierarchy.dram_latency_cycles
    )
    width = core.width
    rob_size = core.rob.entries
    iq_size = core.issue_queue.entries
    lq_size = core.load_queue.entries
    sq_size = core.store_queue.entries
    depth = core.frontend_depth
    icache_penalty = model.memory.l2.latency_cycles

    dispatch_l: list[float] = []
    issue_l: list[float] = []
    finish_l: list[float] = []
    commit_l: list[float] = []
    load_commits: list[float] = []
    store_commits: list[float] = []
    lat_chunks: list[np.ndarray] = []
    dispatch_append = dispatch_l.append
    issue_append = issue_l.append
    finish_append = finish_l.append
    commit_append = commit_l.append
    load_append = load_commits.append
    store_append = store_commits.append

    fetch_ready = 0.0
    int_div_free = 0.0
    fp_div_free = 0.0
    prev_commit = 0.0
    committed = 0
    end_time = 0.0
    i = 0
    iw = -width
    irob = -rob_size
    iiq = -iq_size
    nll = -lq_size
    nss = -sq_size
    broke = False
    for c0 in range(0, n, _CHUNK):
        c1 = min(c0 + _CHUNK, n)
        (kind, eff_lat, icx, dep1, dep2, misp,
         mem_rel, journal, levels) = _chunk_inputs(
            window, c0, c1, hierarchy, icache_penalty, dram_extra
        )
        lat_chunks.append(eff_lat)
        for k, lat, ic, d1, d2, mp in zip(
            kind, eff_lat.tolist(), icx, dep1, dep2, misp
        ):
            if ic:
                fetch_ready += ic
            td = fetch_ready
            if iw >= 0:
                x = dispatch_l[iw] + 1.0
                if x > td:
                    td = x
            if irob >= 0:
                x = commit_l[irob]
                if x > td:
                    td = x
            if iiq >= 0:
                x = issue_l[iiq]
                if x > td:
                    td = x
            if k:
                if k == 1:
                    if nll >= 0:
                        x = load_commits[nll]
                        if x > td:
                            td = x
                elif k == 2:
                    if nss >= 0:
                        x = store_commits[nss]
                        if x > td:
                            td = x
            dispatch_append(td)
            ready = td + 1.0
            if d1:
                x = finish_l[i - d1]
                if x > ready:
                    ready = x
            if d2:
                x = finish_l[i - d2]
                if x > ready:
                    ready = x
            if k > 2:
                if k == 3:
                    if int_div_free > ready:
                        ready = int_div_free
                    fin = ready + lat
                    int_div_free = fin
                else:
                    if fp_div_free > ready:
                        ready = fp_div_free
                    fin = ready + lat
                    fp_div_free = fin
            else:
                fin = ready + lat
            issue_append(ready)
            finish_append(fin)
            if mp:
                x = fin + depth
                if x > fetch_ready:
                    fetch_ready = x
            tc = fin + 1.0
            if prev_commit > tc:
                tc = prev_commit
            if iw >= 0:
                x = commit_l[iw] + 1.0
                if x > tc:
                    tc = x
            commit_append(tc)
            prev_commit = tc
            if k:
                if k == 1:
                    load_append(tc)
                    nll += 1
                elif k == 2:
                    store_append(tc)
                    nss += 1
            iw += 1
            irob += 1
            iiq += 1
            if tc > budget:
                broke = True
                break
            i += 1
            committed = i
            end_time = tc
        if broke:
            _rollback_overrun(hierarchy, mem_rel, journal, levels, c0, i)
            break

    elapsed = budget if committed < n else max(end_time, 1.0)
    if lat_chunks:
        latency_out = np.concatenate(lat_chunks)[:committed]
    else:
        latency_out = np.zeros(0, dtype=np.float64)
    reg = obs_metrics.ACTIVE
    if reg is not None:
        reg.counter("kernel.windows", kernel="ooo").inc()
        reg.counter("kernel.instructions", kernel="ooo").inc(committed)
    return WindowTiming(
        classes=window.classes[:committed].copy(),
        dispatch=np.array(dispatch_l[:committed], dtype=np.float64),
        issue=np.array(issue_l[:committed], dtype=np.float64),
        finish=np.array(finish_l[:committed], dtype=np.float64),
        commit=np.array(commit_l[:committed], dtype=np.float64),
        latency=latency_out,
        mispredicted=window.mispredicted[:committed].copy(),
        committed=committed,
        elapsed_cycles=elapsed,
    )


def inorder_run_cycles(model, app, start_instruction, cycles, env):
    """Kernelized in-order scoreboard execution of one cycle budget.

    Matches :func:`repro.kernels.reference.reference_inorder_run` in
    timing, statistics and cache state; the per-structure ACE
    accounting is computed vectorized over the committed prefix, so
    its sums may differ from the reference's sequential accumulation
    at floating-point rounding level (relative ~1e-15).
    """
    from repro.cores.inorder import TIMESTAMP_CLIP

    if cycles <= 0:
        return QuantumResult.zero()
    core = model.core
    assert core.pipeline_latches is not None
    budget = float(cycles)
    window = app.window(
        start_instruction, int(budget * core.width) + _WINDOW_SLACK
    )
    n = len(window)
    if n == 0:
        return QuantumResult(instructions=0, cycles=budget)
    hierarchy = model.hierarchy_for(app)
    dram_extra = model.dram_latency_cycles(env) - hierarchy.dram_latency_cycles
    l3_start = hierarchy.l3_accesses
    dram_start = hierarchy.dram_accesses

    width = core.width
    depth = core.frontend_depth
    latch_slots = core.pipeline_latches.entries
    icache_penalty = model.memory.l2.latency_cycles

    fetch_l: list[float] = []
    issue_l: list[float] = []
    finish_l: list[float] = []
    wb_l: list[float] = []
    lat_chunks: list[np.ndarray] = []
    fetch_append = fetch_l.append
    issue_append = issue_l.append
    finish_append = finish_l.append
    wb_append = wb_l.append

    fetch_ready = 0.0
    int_div_free = 0.0
    fp_div_free = 0.0
    prev_issue = 0.0
    committed = 0
    end_time = 0.0
    i = 0
    iw = -width
    ilatch = -latch_slots
    broke = False
    for c0 in range(0, n, _CHUNK):
        c1 = min(c0 + _CHUNK, n)
        (kind, eff_lat, icx, dep1, dep2, misp,
         mem_rel, journal, levels) = _chunk_inputs(
            window, c0, c1, hierarchy, icache_penalty, dram_extra
        )
        lat_chunks.append(eff_lat)
        for k, lat, ic, d1, d2, mp in zip(
            kind, eff_lat.tolist(), icx, dep1, dep2, misp
        ):
            if ic:
                fetch_ready += ic
            # Fetch: at most `width` per cycle, and only when a
            # pipeline-latch slot is free (slots are held from fetch
            # to writeback, so stalls back-pressure the front end).
            tf = fetch_ready
            if iw >= 0:
                x = fetch_l[iw] + 1.0
                if x > tf:
                    tf = x
            if ilatch >= 0:
                x = wb_l[ilatch]
                if x > tf:
                    tf = x
            fetch_append(tf)
            # In-order issue after traversing the front-end stages:
            # after the previous instruction, at most `width` per
            # cycle, once operands are ready (stall-on-use).
            ti = tf + depth - 2.0
            if prev_issue > ti:
                ti = prev_issue
            if iw >= 0:
                x = issue_l[iw] + 1.0
                if x > ti:
                    ti = x
            if d1:
                x = finish_l[i - d1]
                if x > ti:
                    ti = x
            if d2:
                x = finish_l[i - d2]
                if x > ti:
                    ti = x
            if k > 2:
                if k == 3:
                    if int_div_free > ti:
                        ti = int_div_free
                    fin = ti + lat
                    int_div_free = fin
                else:
                    if fp_div_free > ti:
                        ti = fp_div_free
                    fin = ti + lat
                    fp_div_free = fin
            else:
                fin = ti + lat
            issue_append(ti)
            finish_append(fin)
            prev_issue = ti
            if mp:
                x = fin + depth
                if x > fetch_ready:
                    fetch_ready = x
            w = fin + 1.0
            wb_append(w)
            iw += 1
            ilatch += 1
            if w > budget:
                broke = True
                break
            i += 1
            committed = i
            end_time = w
        if broke:
            _rollback_overrun(hierarchy, mem_rel, journal, levels, c0, i)
            break

    elapsed = budget if committed < n else max(end_time, 1.0)
    ace, occupancy = _inorder_account(
        model, window, lat_chunks, fetch_l, issue_l, wb_l,
        committed, elapsed, TIMESTAMP_CLIP,
    )
    reg = obs_metrics.ACTIVE
    if reg is not None:
        reg.counter("kernel.windows", kernel="inorder").inc()
        reg.counter("kernel.instructions", kernel="inorder").inc(committed)
    return QuantumResult(
        instructions=committed,
        cycles=elapsed,
        ace_bit_cycles=ace,
        occupancy_bit_cycles=occupancy,
        memory_accesses=float(hierarchy.dram_accesses - dram_start),
        l3_accesses=float(hierarchy.l3_accesses - l3_start),
        branch_mispredictions=float(
            np.count_nonzero(window.mispredicted[:committed])
        ),
    )


def _inorder_account(
    model, window, lat_chunks, fetch_l, issue_l, wb_l,
    committed, elapsed, timestamp_clip,
):
    """Vectorized in-order ACE/occupancy accounting (Section 4.2)."""
    from repro.cores.inorder import _ARCH_REG_LIVE_FRACTION

    core = model.core
    latch_bits = core.pipeline_latches.bits_per_entry
    iq_bits = core.issue_queue.bits_per_entry
    sq_bits = core.store_queue.bits_per_entry
    classes = window.classes[:committed]
    fetch = np.array(fetch_l[:committed], dtype=np.float64)
    issue = np.array(issue_l[:committed], dtype=np.float64)
    wb = np.array(wb_l[:committed], dtype=np.float64)
    if lat_chunks:
        latency = np.concatenate(lat_chunks)[:committed]
    else:
        latency = np.zeros(0, dtype=np.float64)

    non_nop = classes != InstructionClass.NOP
    residency = np.minimum(wb - fetch, timestamp_clip)
    fu_res = np.minimum(latency, timestamp_clip) * fu_bits_table()[classes]
    iq_res = np.minimum(
        np.maximum(issue - fetch - 2.0, 0.0), timestamp_clip
    )
    stores = int(np.count_nonzero(classes == InstructionClass.STORE))

    latch_occ = float(residency.sum()) * latch_bits
    latch_ace = float(residency[non_nop].sum()) * latch_bits
    fu_total = float(fu_res[non_nop].sum())
    iq_total = float(iq_res[non_nop].sum()) * iq_bits
    sq_total = stores * (_STORE_DRAIN * sq_bits)
    arch = (
        core.register_file.arch_bits * _ARCH_REG_LIVE_FRACTION * elapsed
    )
    ace = {
        StructureKind.PIPELINE_LATCHES: latch_ace,
        StructureKind.ISSUE_QUEUE: iq_total,
        StructureKind.STORE_QUEUE: sq_total,
        StructureKind.REGISTER_FILE: arch,
        StructureKind.FUNCTIONAL_UNITS: fu_total,
    }
    occupancy = {
        StructureKind.PIPELINE_LATCHES: latch_occ,
        StructureKind.ISSUE_QUEUE: iq_total,
        StructureKind.STORE_QUEUE: sq_total,
        StructureKind.REGISTER_FILE: arch,
        StructureKind.FUNCTIONAL_UNITS: fu_total,
    }
    return ace, occupancy
