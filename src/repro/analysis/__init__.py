"""Analyses: robustness and design studies over the reproduction."""

from repro.analysis.hardening import (
    HardeningOption,
    HardeningPlan,
    greedy_plan,
    hardening_options,
    suite_ace_profile,
)
from repro.analysis.sensitivity import SensitivityPoint, sweep_assumptions

__all__ = [
    "HardeningOption",
    "HardeningPlan",
    "SensitivityPoint",
    "greedy_plan",
    "hardening_options",
    "suite_ace_profile",
    "sweep_assumptions",
]
