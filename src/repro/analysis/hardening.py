"""Selective hardening: which structures earn protection?

The paper excludes caches from ACE accounting because they already
carry ECC, and its related work (Soundararajan et al. [25]) bounds
vulnerability by protecting individual structures.  This analysis
answers the follow-on question for the cores themselves: given the
suite's ABC stacks, which structures should a designer harden (ECC,
parity, hardened cells) to buy the most AVF reduction per protected
bit -- and how does hardening compose with reliability-aware
scheduling?

Hardening a structure is modelled as removing its ACE contribution
(protected state is detected/corrected), at an area cost proportional
to its capacity bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.config.cores import CoreConfig, big_core_config
from repro.config.machines import MemoryConfig
from repro.config.structures import StructureKind
from repro.cores.base import ISOLATED
from repro.cores.mechanistic import MechanisticCoreModel
from repro.sim.isolated import run_isolated


@dataclass(frozen=True)
class HardeningOption:
    """The payoff of hardening one structure.

    Attributes:
        kind: the structure.
        capacity_bits: bits that must be protected.
        ace_share: the structure's share of total suite ACE bit-cycles.
        avf_reduction: absolute core-AVF reduction if hardened.
    """

    kind: StructureKind
    capacity_bits: int
    ace_share: float
    avf_reduction: float

    @property
    def efficiency(self) -> float:
        """AVF reduction per protected kilobit (the ranking metric)."""
        return self.avf_reduction / (self.capacity_bits / 1000.0)


@dataclass(frozen=True)
class HardeningPlan:
    """A greedy hardening plan under a bit budget.

    Attributes:
        chosen: structures to harden, in selection order.
        protected_bits: total bits protected.
        avf_before / avf_after: suite-average core AVF without/with
            the plan.
    """

    chosen: tuple[StructureKind, ...]
    protected_bits: int
    avf_before: float
    avf_after: float

    @property
    def avf_reduction(self) -> float:
        return self.avf_before - self.avf_after


def _structure_capacity(core: CoreConfig) -> dict[StructureKind, int]:
    capacity = {
        kind: struct.total_bits
        for kind, struct in core.tracked_structures().items()
    }
    capacity[StructureKind.REGISTER_FILE] = core.register_file.total_bits
    capacity[StructureKind.FUNCTIONAL_UNITS] = core.fu_total_bits
    return capacity


def suite_ace_profile(
    core: CoreConfig | None = None,
    memory: MemoryConfig | None = None,
    instructions: int = 5_000_000,
) -> tuple[dict[StructureKind, float], float]:
    """Suite-aggregate ACE bit-cycles per structure, plus total cycles.

    Each benchmark contributes its isolated full-run accounting on the
    given core (big core by default).
    """
    from repro.workloads.spec2006 import SUITE

    core = core if core is not None else big_core_config()
    memory = memory if memory is not None else MemoryConfig()
    model = MechanisticCoreModel(core, memory)
    totals: dict[StructureKind, float] = {}
    cycles = 0.0
    for profile in SUITE.values():
        run = run_isolated(model, profile.scaled(instructions))
        cycles += run.cycles
        for kind, value in run.ace_bit_cycles.items():
            totals[kind] = totals.get(kind, 0.0) + value
    return totals, cycles


def hardening_options(
    core: CoreConfig | None = None,
    memory: MemoryConfig | None = None,
) -> list[HardeningOption]:
    """Per-structure hardening payoffs, sorted by efficiency."""
    core = core if core is not None else big_core_config()
    ace, cycles = suite_ace_profile(core, memory)
    capacity = _structure_capacity(core)
    total_capacity = core.total_ace_capacity_bits
    total_ace = sum(ace.values())
    options = []
    for kind, ace_bit_cycles in ace.items():
        if kind not in capacity:
            continue
        options.append(HardeningOption(
            kind=kind,
            capacity_bits=capacity[kind],
            ace_share=ace_bit_cycles / total_ace,
            avf_reduction=ace_bit_cycles / (cycles * total_capacity),
        ))
    return sorted(options, key=lambda o: o.efficiency, reverse=True)


def greedy_plan(
    budget_bits: int,
    options: Sequence[HardeningOption] | None = None,
    core: CoreConfig | None = None,
) -> HardeningPlan:
    """Greedy selection of structures under a protected-bit budget."""
    if budget_bits < 0:
        raise ValueError("budget cannot be negative")
    core = core if core is not None else big_core_config()
    if options is None:
        options = hardening_options(core)
    avf_before = sum(o.avf_reduction for o in options)
    chosen: list[StructureKind] = []
    protected = 0
    remaining_avf = avf_before
    for option in options:  # already efficiency-sorted
        if protected + option.capacity_bits <= budget_bits:
            chosen.append(option.kind)
            protected += option.capacity_bits
            remaining_avf -= option.avf_reduction
    return HardeningPlan(
        chosen=tuple(chosen),
        protected_bits=protected,
        avf_before=avf_before,
        # Clamp floating-point residue when everything is hardened.
        avf_after=max(remaining_avf, 0.0),
    )
