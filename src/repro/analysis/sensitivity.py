"""Sensitivity of the headline result to modeling assumptions.

A reproduction's conclusions are only as strong as their robustness to
the knobs that had to be chosen without the original testbed.  This
module re-runs the headline comparison (reliability- vs performance-
optimized vs random scheduling on 2B2S) while varying one assumption
at a time:

* scheduler quantum length,
* migration overhead,
* swap-hysteresis threshold,
* LLC-share exponent of the interference model,
* the workload-mix generation seed.

The output is, per assumption value, the mean normalized SSER of the
reliability scheduler (vs random) and its mean STP cost (vs the
performance scheduler) -- if the paper's conclusion holds, these stay
in a narrow band across every variation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from repro.config.machines import MachineConfig, machine_2b2s
from repro.memory import interference
from repro.sched.performance import PerformanceScheduler
from repro.sched.random_sched import RandomScheduler
from repro.sched.reliability import ReliabilityScheduler
from repro.sim.multicore import MulticoreSimulation
from repro.workloads.mixes import generate_workloads
from repro.workloads.spec2006 import benchmark


@dataclass(frozen=True)
class SensitivityPoint:
    """Headline metrics under one assumption setting.

    Attributes:
        assumption: the varied knob's name.
        value: the knob's value at this point.
        sser_vs_random: mean normalized SSER of the reliability
            scheduler against random scheduling (lower is better).
        stp_vs_performance: mean normalized STP of the reliability
            scheduler against the performance scheduler.
    """

    assumption: str
    value: float
    sser_vs_random: float
    stp_vs_performance: float


def _headline(
    machine: MachineConfig,
    instructions: int,
    workload_count: int,
    swap_threshold: float | None,
    workload_seed: int,
) -> tuple[float, float]:
    workloads = generate_workloads(4, seed=workload_seed)[::len(
        generate_workloads(4)
    ) // workload_count or 1][:workload_count]
    sser_ratios = []
    stp_ratios = []
    for index, mix in enumerate(workloads):
        profiles = [benchmark(n).scaled(instructions) for n in mix.benchmarks]
        kwargs = {}
        if swap_threshold is not None:
            kwargs["swap_threshold"] = swap_threshold
        random_run = MulticoreSimulation(
            machine, profiles, RandomScheduler(machine, 4, seed=index)
        ).run()
        rel_run = MulticoreSimulation(
            machine, profiles, ReliabilityScheduler(machine, 4, **kwargs)
        ).run()
        perf_run = MulticoreSimulation(
            machine, profiles, PerformanceScheduler(machine, 4, **kwargs)
        ).run()
        sser_ratios.append(rel_run.sser / random_run.sser)
        stp_ratios.append(rel_run.stp / perf_run.stp)
    n = len(sser_ratios)
    return sum(sser_ratios) / n, sum(stp_ratios) / n


def sweep_assumptions(
    *,
    instructions: int = 100_000_000,
    workload_count: int = 12,
    quantum_seconds: Sequence[float] = (5e-4, 1e-3, 2e-3),
    migration_overhead_seconds: Sequence[float] = (0.0, 2e-5, 1e-4),
    swap_thresholds: Sequence[float] = (0.0, 0.02, 0.08),
    llc_share_exponents: Sequence[float] = (0.25, 0.5, 1.0),
    workload_seeds: Sequence[int] = (42, 7, 123),
) -> list[SensitivityPoint]:
    """Vary one modeling assumption at a time around the defaults."""
    base = machine_2b2s()
    points: list[SensitivityPoint] = []

    for quantum in quantum_seconds:
        machine = dataclasses.replace(
            base,
            quantum_seconds=quantum,
            sampling_quantum_seconds=quantum / 10,
        )
        sser, stp = _headline(machine, instructions, workload_count, None, 42)
        points.append(SensitivityPoint("quantum_seconds", quantum, sser, stp))

    for overhead in migration_overhead_seconds:
        machine = dataclasses.replace(
            base, migration_overhead_seconds=overhead
        )
        sser, stp = _headline(machine, instructions, workload_count, None, 42)
        points.append(
            SensitivityPoint("migration_overhead_seconds", overhead, sser, stp)
        )

    for threshold in swap_thresholds:
        sser, stp = _headline(base, instructions, workload_count, threshold, 42)
        points.append(
            SensitivityPoint("swap_threshold", threshold, sser, stp)
        )

    original_exponent = interference.LLC_SHARE_EXPONENT
    try:
        for exponent in llc_share_exponents:
            interference.LLC_SHARE_EXPONENT = exponent
            sser, stp = _headline(base, instructions, workload_count, None, 42)
            points.append(
                SensitivityPoint("llc_share_exponent", exponent, sser, stp)
            )
    finally:
        interference.LLC_SHARE_EXPONENT = original_exponent

    for seed in workload_seeds:
        sser, stp = _headline(base, instructions, workload_count, None, seed)
        points.append(
            SensitivityPoint("workload_seed", float(seed), sser, stp)
        )
    return points
