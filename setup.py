"""Setup shim: enables editable installs on environments without the
``wheel`` package (offline PEP 660 builds need it; ``setup.py develop``
does not).
"""

from setuptools import setup

setup()
